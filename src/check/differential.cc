#include "check/differential.hh"

#include <limits>
#include <map>

#include <memory>

#include "check/reference.hh"
#include "core/policy.hh"
#include "exec/event_trace.hh"
#include "exec/lane_replay.hh"
#include "exec/machine.hh"
#include "exec/trace.hh"
#include "harness/parallel.hh"
#include "harness/sweep_planner.hh"
#include "mem/sparse_memory.hh"
#include "model/predict.hh"
#include "stats/run_stats.hh"
#include "util/log.hh"

namespace nbl::check
{

namespace
{

constexpr long long kInf = std::numeric_limits<long long>::max();

long long
eff(int v)
{
    return v < 0 ? kInf : v;
}

/**
 * An ExperimentConfig's MSHR restrictions resolved to the partial
 * order the monotonicity check walks (-1 widened to kInf, per-set
 * tracking resolved against the geometry).
 */
struct Limits
{
    bool blocking = false;
    bool wma = false;
    /** Inverted MSHR with unlimited destinations: dominates every
     *  non-blocking organization with the same store policy. */
    bool noRestrict = false;
    /** Shapes the partial order does not cover (e.g. an inverted
     *  MSHR with *finite* destination fields): skip its pairs. */
    bool incomparable = false;
    long long mshrs = kInf;
    long long misses = kInf;
    long long perSet = kInf;
    long long sub = 1;
    long long mps = kInf;
    core::StoreMode store = core::StoreMode::WriteAround;
    unsigned fillExtra = 0;
    std::string label;
};

Limits
resolveLimits(const harness::ExperimentConfig &cfg)
{
    core::MshrPolicy p = cfg.customPolicy
                             ? *cfg.customPolicy
                             : core::makePolicy(cfg.config);
    Limits l;
    l.store = p.storeMode;
    l.fillExtra = p.fillExtraCycles;
    l.label = p.label;
    switch (p.mode) {
    case core::CacheMode::Blocking:
        l.blocking = true;
        return l;
    case core::CacheMode::BlockingWMA:
        l.blocking = l.wma = true;
        return l;
    case core::CacheMode::Inverted:
        if (p.subBlocks == 1 && p.missesPerSubBlock < 0)
            l.noRestrict = true;
        else
            l.incomparable = true;
        return l;
    case core::CacheMode::MshrFile:
        break;
    }
    l.mshrs = eff(p.numMshrs);
    l.misses = eff(p.maxMisses);
    l.perSet = p.fetchesPerSetTracksWays
                   ? (cfg.ways ? (long long)cfg.ways : kInf)
                   : eff(p.fetchesPerSet);
    l.sub = p.subBlocks;
    l.mps = eff(p.missesPerSubBlock);
    return l;
}

/**
 * True when `a` accepts every miss stream `b` accepts, so cycles(a)
 * <= cycles(b) is a theorem (under the eviction-free precondition;
 * see the header). Destination fields compare by accept-set
 * inclusion: splitting a line into a.sub sub-blocks refines b.sub's
 * partition only when b.sub divides a.sub.
 */
bool
dominates(const Limits &a, const Limits &b)
{
    if (a.blocking || b.blocking || a.incomparable || b.incomparable)
        return false;
    if (a.store != b.store || a.fillExtra > b.fillExtra)
        return false;
    if (a.noRestrict)
        return true;
    if (b.noRestrict)
        return false;
    return a.mshrs >= b.mshrs && a.misses >= b.misses &&
           a.perSet >= b.perSet && a.sub % b.sub == 0 &&
           a.mps >= b.mps;
}

/** Machine-identical apart from the MSHR policy? (Monotonicity only
 *  orders runs over the same cache geometry and memory system.) */
bool
sameMachine(const harness::ExperimentConfig &a,
            const harness::ExperimentConfig &b)
{
    return a.cacheBytes == b.cacheBytes && a.lineBytes == b.lineBytes &&
           a.ways == b.ways && a.missPenalty == b.missPenalty &&
           a.issueWidth == b.issueWidth &&
           a.perfectCache == b.perfectCache &&
           a.fillWritePorts == b.fillWritePorts &&
           a.maxInstructions == b.maxInstructions &&
           core::hierarchyKey(a.hierarchy) ==
               core::hierarchyKey(b.hierarchy) &&
           nbl::policy::stallPolicyKey(a.stallPolicy) ==
               nbl::policy::stallPolicyKey(b.stallPolicy);
}

/** First differing counter between two snapshots, for the report. */
std::string
snapshotDiff(const stats::Snapshot &a, const stats::Snapshot &b)
{
    if (a.scalars.size() != b.scalars.size() ||
        a.histograms.size() != b.histograms.size() ||
        a.derived.size() != b.derived.size())
        return "snapshots differ in structure";
    for (size_t i = 0; i < a.scalars.size(); ++i) {
        const stats::Scalar &x = a.scalars[i];
        const stats::Scalar &y = b.scalars[i];
        if (x.name != y.name)
            return strfmt("scalar #%zu name: %s vs %s", i,
                          x.name.c_str(), y.name.c_str());
        if (x.value != y.value)
            return strfmt("%s: %llu vs %llu", x.name.c_str(),
                          (unsigned long long)x.value,
                          (unsigned long long)y.value);
    }
    for (size_t i = 0; i < a.histograms.size(); ++i) {
        const stats::Histogram &x = a.histograms[i];
        const stats::Histogram &y = b.histograms[i];
        if (x.name != y.name || x.buckets.size() != y.buckets.size())
            return strfmt("histogram #%zu structure: %s vs %s", i,
                          x.name.c_str(), y.name.c_str());
        for (size_t j = 0; j < x.buckets.size(); ++j) {
            if (x.buckets[j].label != y.buckets[j].label ||
                x.buckets[j].count != y.buckets[j].count)
                return strfmt(
                    "%s[%s]: %llu vs %llu", x.name.c_str(),
                    x.buckets[j].label.c_str(),
                    (unsigned long long)x.buckets[j].count,
                    (unsigned long long)y.buckets[j].count);
        }
    }
    for (size_t i = 0; i < a.derived.size(); ++i) {
        const stats::Derived &x = a.derived[i];
        const stats::Derived &y = b.derived[i];
        bool both_nan = x.value != x.value && y.value != y.value;
        if (x.name != y.name || (x.value != y.value && !both_nan))
            return strfmt("%s: %.17g vs %.17g", x.name.c_str(),
                          x.value, y.value);
    }
    return "counters differ (unlocated)";
}

std::string
cfgLabel(const harness::ExperimentConfig &cfg)
{
    const std::string policy = cfg.customPolicy
                                   ? cfg.customPolicy->label
                                   : core::configLabel(cfg.config);
    return strfmt("%s %lluB/%lluB/%u-way mp=%u", policy.c_str(),
                  (unsigned long long)cfg.cacheBytes,
                  (unsigned long long)cfg.lineBytes, cfg.ways,
                  cfg.missPenalty);
}

} // namespace

std::string
Divergence::str() const
{
    return strfmt("seed=%llu cfg#%zu [%s] %s",
                  (unsigned long long)seed, cfgIndex, check.c_str(),
                  detail.c_str());
}

std::vector<Divergence>
checkProgram(const isa::Program &program,
             std::vector<harness::ExperimentConfig> cfgs,
             const CheckOptions &opts)
{
    std::vector<Divergence> divs;
    auto report = [&](size_t i, const char *check, std::string detail) {
        Divergence d;
        d.check = check;
        d.detail = std::move(detail);
        d.cfgIndex = i;
        divs.push_back(std::move(d));
    };

    for (harness::ExperimentConfig &c : cfgs)
        c.maxInstructions = opts.maxInstructions;

    // Record the functional execution once; every engine below sees
    // the same architectural prefix.
    exec::EventTrace etrace;
    {
        mem::SparseMemory data;
        etrace = exec::recordEventTrace(program, data,
                                        opts.maxInstructions);
    }
    exec::MemTrace mtrace;
    {
        mem::SparseMemory data;
        mtrace = exec::recordTrace(program, data, opts.maxInstructions);
    }

    std::vector<exec::RunOutput> outs(cfgs.size());
    std::vector<stats::Snapshot> snaps(cfgs.size());

    // mc=0 reference runs, shared across configurations with the same
    // geometry / penalty / store-miss policy.
    std::map<std::string, ReferenceResult> refs;
    auto reference = [&](const harness::ExperimentConfig &cfg,
                         bool wma) -> const ReferenceResult & {
        std::string key =
            strfmt("%llu|%llu|%u|%u|%d",
                   (unsigned long long)cfg.cacheBytes,
                   (unsigned long long)cfg.lineBytes, cfg.ways,
                   cfg.missPenalty, int(wma));
        auto it = refs.find(key);
        if (it == refs.end()) {
            ReferenceConfig rc;
            rc.cacheBytes = cfg.cacheBytes;
            rc.lineBytes = cfg.lineBytes;
            rc.ways = cfg.ways;
            rc.missPenalty = cfg.missPenalty;
            rc.writeMissAllocate = wma;
            rc.maxInstructions = opts.maxInstructions;
            mem::SparseMemory data;
            it = refs.emplace(key, referenceRun(program, data, rc))
                     .first;
        }
        return it->second;
    };

    // Analytical-model characterizations, shared across every
    // configuration with the same geometry/penalty slice.
    std::map<std::string, std::shared_ptr<const model::TraceProfile>>
        profs;
    auto profileFor = [&](const harness::ExperimentConfig &cfg)
        -> const model::TraceProfile & {
        model::ProfileConfig pc = harness::profileConfigFor(cfg);
        std::string key = model::profileKey(pc);
        auto it = profs.find(key);
        if (it == profs.end()) {
            it = profs
                     .emplace(key,
                              std::make_shared<const model::TraceProfile>(
                                  model::characterize(program, etrace,
                                                      pc)))
                     .first;
        }
        return *it->second;
    };

    for (size_t i = 0; i < cfgs.size(); ++i) {
        const harness::ExperimentConfig &cfg = cfgs[i];
        const exec::MachineConfig mc = harness::makeMachineConfig(cfg);
        {
            mem::SparseMemory data;
            outs[i] = exec::run(program, data, mc);
        }
        const exec::RunOutput &out = outs[i];
        snaps[i] = stats::snapshotOfRun(out);

        // Engine cross: exact replay must be bit-identical to
        // execution-driven simulation on every counter.
        {
            exec::RunOutput rep = exec::replayExact(program, etrace, mc);
            stats::Snapshot rs = stats::snapshotOfRun(rep);
            if (!snaps[i].countersEqual(rs))
                report(i, "exec-vs-replay", snapshotDiff(snaps[i], rs));
        }

        // Stall-partition identity (single-issue contract).
        if (cfg.issueWidth == 1) {
            uint64_t sum = out.cpu.instructions +
                           out.cpu.depStallCycles +
                           out.cpu.structStallCycles +
                           out.cpu.blockStallCycles +
                           out.cpu.predStallCycles;
            if (out.cpu.cycles != sum)
                report(i, "stall-partition",
                       strfmt("cycles=%llu but partition sums to %llu",
                              (unsigned long long)out.cpu.cycles,
                              (unsigned long long)sum));
        }

        // Histogram conservation laws (docs/OBSERVABILITY.md,
        // docs/TESTING.md). The flight histograms integrate over the
        // cache's lifetime, which extends past Halt while the last
        // fetches drain: both end together, at most penalty +
        // fill-extra cycles after the CPU, and exactly at the CPU's
        // last cycle on a blocking cache (the stall covers the fill).
        const Limits lim = resolveLimits(cfg);
        const bool degenerate_hier = cfg.hierarchy.degenerate();
        if (!cfg.perfectCache) {
            const stats::Snapshot &s = snaps[i];
            uint64_t fm = s.histogram("flight.misses").total();
            uint64_t ff = s.histogram("flight.fetches").total();
            // Over a hierarchy a fill's latency has no constant cap
            // (lower-level waits and channel queueing stretch the
            // drain tail), so only the constant-penalty tail bound is
            // degenerate-only; the identities stay unconditional.
            uint64_t tail_max =
                degenerate_hier
                    ? out.cpu.cycles + out.missPenalty + lim.fillExtra
                    : std::numeric_limits<uint64_t>::max();
            if (fm != ff || fm < out.cpu.cycles || fm > tail_max ||
                (lim.blocking && fm != out.cpu.cycles))
                report(i, "conservation",
                       strfmt("flight totals %llu/%llu vs cycles %llu "
                              "(drain tail cap %llu)",
                              (unsigned long long)fm,
                              (unsigned long long)ff,
                              (unsigned long long)out.cpu.cycles,
                              (unsigned long long)tail_max));
            struct Law
            {
                const char *hist;
                uint64_t want;
            };
            const Law laws[] = {
                {"cache.dests_per_fetch", out.cache.fetches},
                {"wbuf.depth_on_push", out.wbuf.writes},
                {"mshr.per_set_occupancy",
                 lim.blocking ? 0 : out.cache.fetches},
            };
            for (const Law &law : laws) {
                uint64_t got = s.histogram(law.hist).total();
                if (got != law.want)
                    report(i, "conservation",
                           strfmt("%s.total()=%llu want %llu",
                                  law.hist, (unsigned long long)got,
                                  (unsigned long long)law.want));
            }
        }

        // Independent blocking reference: exact on mc=0 / mc=0 +wma.
        // The reference model hard-wires the constant penalty, so both
        // reference checks apply only to the degenerate chain.
        if (lim.blocking && cfg.issueWidth == 1 && !cfg.perfectCache &&
            lim.fillExtra == 0 && degenerate_hier &&
            cfg.stallPolicy.defaulted()) {
            const ReferenceResult &ref = reference(cfg, lim.wma);
            struct Cmp
            {
                const char *name;
                uint64_t ref, got;
            };
            const Cmp cmps[] = {
                {"cycles", ref.cycles, out.cpu.cycles},
                {"instructions", ref.instructions,
                 out.cpu.instructions},
                {"loads", ref.loads, out.cpu.loads},
                {"stores", ref.stores, out.cpu.stores},
                {"branches", ref.branches, out.cpu.branches},
                {"dep_stall", ref.depStallCycles,
                 out.cpu.depStallCycles},
                {"struct_stall", 0, out.cpu.structStallCycles},
                {"block_stall", ref.blockStallCycles,
                 out.cpu.blockStallCycles},
                {"load_hits", ref.loadHits, out.cache.loadHits},
                {"store_hits", ref.storeHits, out.cache.storeHits},
                {"load_primary_misses", ref.loadPrimaryMisses,
                 out.cache.primaryMisses},
                {"secondary_misses", 0, out.cache.secondaryMisses},
                {"store_primary_misses", ref.storePrimaryMisses,
                 out.cache.storePrimaryMisses},
                {"store_misses", ref.storeMisses,
                 out.cache.storeMisses},
                {"fetches", ref.fetches, out.cache.fetches},
                {"evictions", ref.evictions, out.cache.evictions},
                {"hit_cap", ref.hitInstructionCap,
                 out.hitInstructionCap},
            };
            for (const Cmp &c : cmps) {
                if (c.ref != c.got)
                    report(i, "reference-exact",
                           strfmt("%s: reference=%llu model=%llu (%s)",
                                  c.name, (unsigned long long)c.ref,
                                  (unsigned long long)c.got,
                                  cfgLabel(cfg).c_str()));
            }
        }

        // Blocking upper bound: under the eviction-free precondition
        // a lockup cache can only be slower than any write-around
        // lockup-free organization with free fills.
        if (!lim.blocking && !lim.incomparable &&
            cfg.issueWidth == 1 && !cfg.perfectCache &&
            lim.store == core::StoreMode::WriteAround &&
            lim.fillExtra == 0 && degenerate_hier &&
            cfg.stallPolicy.defaulted()) {
            const ReferenceResult &ref = reference(cfg, false);
            if (ref.evictions == 0 && out.cache.evictions == 0 &&
                out.cpu.cycles > ref.cycles)
                report(i, "reference-bound",
                       strfmt("%s cycles=%llu exceeds blocking "
                              "reference %llu",
                              cfgLabel(cfg).c_str(),
                              (unsigned long long)out.cpu.cycles,
                              (unsigned long long)ref.cycles));
        }

        // Third oracle: the analytical model's provable stall bounds
        // (model/predict.hh) must bracket the simulator on every
        // configuration the model covers, and hit it exactly on the
        // blocking ones.
        if (cfg.issueWidth == 1 && !cfg.perfectCache &&
            cfg.fillWritePorts == 0 && degenerate_hier &&
            cfg.stallPolicy.defaulted()) {
            model::Prediction pred = model::predict(
                profileFor(cfg), harness::predictQueryFor(cfg));
            if (pred.supported) {
                uint64_t stalls = out.cpu.missStallCycles();
                if (pred.instructions != out.cpu.instructions)
                    report(i, "model-bound",
                           strfmt("instructions: model=%llu sim=%llu",
                                  (unsigned long long)pred.instructions,
                                  (unsigned long long)
                                      out.cpu.instructions));
                if (stalls < pred.stallLower ||
                    stalls > pred.stallUpper)
                    report(
                        i, "model-bound",
                        strfmt("%s stalls=%llu outside [%llu, %llu]",
                               cfgLabel(cfg).c_str(),
                               (unsigned long long)stalls,
                               (unsigned long long)pred.stallLower,
                               (unsigned long long)pred.stallUpper));
                if (pred.exact && stalls != pred.stallEstimate)
                    report(i, "model-exact",
                           strfmt("%s stalls=%llu but exact model "
                                  "says %llu",
                                  cfgLabel(cfg).c_str(),
                                  (unsigned long long)stalls,
                                  (unsigned long long)
                                      pred.stallEstimate));
            }
        }

        // Trace replay: the only information a trace lacks is
        // dataflow, so whenever execution-driven simulation recorded
        // zero dependence-stall cycles the two engines must agree
        // exactly; for blocking caches that holds unconditionally (a
        // blocked processor never runs ahead into a dependence).
        // When dependence stalls did occur there is no sound bound
        // in either direction: shifting accesses earlier moves
        // write-buffer merge and secondary-miss windows
        // non-monotonically (this is exactly the paper's
        // trace-vs-exec methodology gap), so the checker is silent.
        // With SSR active the theorem still holds: a forwarded issue
        // happens at the dependence-free cycle (that is what
        // forwarding means), so zero recorded dependence stalls again
        // implies a dependence-free timeline -- identical access
        // cycles, identical predictor evolution, identical penalties.
        if (cfg.issueWidth == 1 && !cfg.perfectCache &&
            (lim.blocking || out.cpu.depStallCycles == 0)) {
            exec::ReplayResult tr = exec::replayTrace(
                mtrace, mc.geometry, mc.policy, mc.memory,
                mc.hierarchy, mc.stallPolicy);
            if (tr.cycles != out.cpu.cycles)
                report(i, "trace-replay",
                       strfmt("trace cycles=%llu vs exec %llu (%s)",
                              (unsigned long long)tr.cycles,
                              (unsigned long long)out.cpu.cycles,
                              cfgLabel(cfg).c_str()));
        }
    }

    // Engine cross: lane-batched lockstep replay must be bit-identical
    // to execution-driven simulation, lane for lane. The whole
    // lane-replayable subset rides in one batch, so the batch size --
    // and with it the fast-path/slow-path interleaving inside the
    // lockstep loop -- varies with the generated config set.
    if (opts.lanes) {
        std::vector<size_t> lane_idx;
        std::vector<exec::MachineConfig> lane_mcs;
        for (size_t i = 0; i < cfgs.size(); ++i) {
            exec::MachineConfig mc = harness::makeMachineConfig(cfgs[i]);
            if (exec::laneReplayable(mc)) {
                lane_idx.push_back(i);
                lane_mcs.push_back(mc);
            }
        }
        std::vector<exec::RunOutput> lanes =
            exec::replayLanes(program, etrace, lane_mcs);
        for (size_t k = 0; k < lane_idx.size(); ++k) {
            stats::Snapshot ls = stats::snapshotOfRun(lanes[k]);
            if (!snaps[lane_idx[k]].countersEqual(ls))
                report(lane_idx[k], "exec-vs-lane",
                       snapshotDiff(snaps[lane_idx[k]], ls));
        }
    }

    // Cross-config monotonicity: a configuration that accepts every
    // miss stream another accepts can never take more cycles -- given
    // both runs are eviction-free (with evictions the replacement
    // stream itself depends on the policy and ordering is forfeit).
    for (size_t i = 0; i < cfgs.size(); ++i) {
        if (cfgs[i].issueWidth != 1 || cfgs[i].perfectCache)
            continue;
        // Over a hierarchy the lower levels carry policy-dependent
        // state (L2 tags, MSHR queueing), so accepting more misses is
        // not provably faster; the lattice covers only the constant-
        // penalty chain.
        if (!cfgs[i].hierarchy.degenerate())
            continue;
        // A stall policy breaks the lattice the same way: prefetches
        // reshape the miss stream and prediction penalties depend on
        // per-organization outcomes, so ordering is forfeit even
        // between runs sharing one policy.
        if (!cfgs[i].stallPolicy.defaulted())
            continue;
        if (outs[i].cache.evictions != 0)
            continue;
        const Limits a = resolveLimits(cfgs[i]);
        for (size_t j = 0; j < cfgs.size(); ++j) {
            if (i == j || !sameMachine(cfgs[i], cfgs[j]))
                continue;
            if (outs[j].cache.evictions != 0)
                continue;
            if (!cfgs[j].stallPolicy.defaulted())
                continue;
            const Limits b = resolveLimits(cfgs[j]);
            bool dom = dominates(a, b);
            // A write-around blocking cache is the floor of the
            // resource lattice: anything lockup-free dominates it.
            if (!dom && b.blocking && !b.wma && !a.blocking &&
                !a.incomparable &&
                a.store == core::StoreMode::WriteAround &&
                a.fillExtra == 0)
                dom = true;
            if (!dom)
                continue;
            if (outs[i].cpu.cycles > outs[j].cpu.cycles)
                report(i, "monotonicity",
                       strfmt("%s cycles=%llu exceeds dominated %s "
                              "cycles=%llu",
                              cfgLabel(cfgs[i]).c_str(),
                              (unsigned long long)outs[i].cpu.cycles,
                              cfgLabel(cfgs[j]).c_str(),
                              (unsigned long long)outs[j].cpu.cycles));
        }
    }

    // Lab engine: serial and parallel sweeps must reproduce the
    // execution-driven counters bit-for-bit.
    if (opts.lab) {
        harness::Lab serial_lab;
        serial_lab.addRawProgram("fuzz", program);
        harness::Lab parallel_lab;
        parallel_lab.addRawProgram("fuzz", program);
        std::vector<harness::SweepPoint> points;
        points.reserve(cfgs.size());
        for (const harness::ExperimentConfig &c : cfgs)
            points.push_back({"fuzz", c});
        std::vector<harness::ExperimentResult> par =
            harness::runPointsParallel(parallel_lab, points,
                                       opts.labJobs);
        for (size_t i = 0; i < cfgs.size(); ++i) {
            stats::Snapshot ss = stats::snapshotOfRun(
                serial_lab.run("fuzz", cfgs[i]).run);
            if (!snaps[i].countersEqual(ss))
                report(i, "lab-serial", snapshotDiff(snaps[i], ss));
            stats::Snapshot ps = stats::snapshotOfRun(par[i].run);
            if (!snaps[i].countersEqual(ps))
                report(i, "lab-parallel", snapshotDiff(snaps[i], ps));
        }

        // Model-pruned sweep coverage: the planner's back-substituted
        // simulations must stay bit-identical to execution, and its
        // pruned estimates must sit inside their own provable bounds.
        harness::Lab planner_lab;
        planner_lab.addRawProgram("fuzz", program);
        harness::PlanOptions popts;
        popts.prune = true;
        popts.jobs = opts.labJobs;
        harness::PlanOutcome plan =
            harness::planAndRun(planner_lab, points, popts);
        for (size_t i = 0; i < cfgs.size(); ++i) {
            const harness::PlannedPoint &p = plan.points[i];
            if (p.simulated) {
                stats::Snapshot ms =
                    stats::snapshotOfRun(p.result.run);
                if (!snaps[i].countersEqual(ms))
                    report(i, "model-prune-substitution",
                           snapshotDiff(snaps[i], ms));
            } else {
                uint64_t est = p.result.run.cpu.missStallCycles();
                if (!p.prediction.supported ||
                    est < p.prediction.stallLower ||
                    est > p.prediction.stallUpper)
                    report(i, "model-prune-estimate",
                           strfmt("pruned estimate %llu outside "
                                  "[%llu, %llu] (%s)",
                                  (unsigned long long)est,
                                  (unsigned long long)
                                      p.prediction.stallLower,
                                  (unsigned long long)
                                      p.prediction.stallUpper,
                                  cfgLabel(cfgs[i]).c_str()));
            }
        }
    }

    return divs;
}

std::vector<Divergence>
checkSeed(uint64_t seed, const CheckOptions &opts)
{
    Rng rng(seed);
    isa::Program program = generateProgram(rng);
    std::vector<harness::ExperimentConfig> cfgs = generateConfigs(rng);
    std::vector<Divergence> divs = checkProgram(program, cfgs, opts);
    for (Divergence &d : divs)
        d.seed = seed;
    return divs;
}

} // namespace nbl::check
