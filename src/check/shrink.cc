#include "check/shrink.hh"

#include <cstdio>
#include <map>
#include <optional>
#include <sstream>

#include "core/policy.hh"
#include "util/log.hh"

namespace nbl::check
{

namespace
{

/**
 * Delete code_[s, e) and remap branch targets across the cut: targets
 * before the cut are unchanged, targets past it shift down, targets
 * into it land on the first surviving instruction. Returns an empty
 * optional when the result is structurally invalid (e.g. the cut
 * removed the final Halt's reachability) -- such a candidate is
 * simply not tried.
 */
std::optional<isa::Program>
deleteRange(const isa::Program &prog, size_t s, size_t e)
{
    isa::Program out(prog.name());
    for (size_t pc = 0; pc < prog.size(); ++pc) {
        if (pc >= s && pc < e)
            continue;
        isa::Instr in = prog.at(pc);
        if (in.isBranch()) {
            auto t = uint64_t(in.imm);
            if (t >= e)
                in.imm = int64_t(t - (e - s));
            else if (t >= s)
                in.imm = int64_t(s);
        }
        out.push(in);
    }
    if (out.size() == 0 ||
        out.at(out.size() - 1).op != isa::Op::Halt) {
        isa::Instr halt;
        halt.op = isa::Op::Halt;
        out.push(halt);
    }
    if (!out.validate(/*fail_fatal=*/false))
        return std::nullopt;
    return out;
}

const char *
regClassToken(isa::RegClass cls)
{
    return cls == isa::RegClass::Int ? "i" : "f";
}

bool
parseReg(const std::string &tok, isa::RegId &reg)
{
    if (tok.size() < 2 || (tok[0] != 'i' && tok[0] != 'f'))
        return false;
    int idx = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
        if (tok[i] < '0' || tok[i] > '9')
            return false;
        idx = idx * 10 + (tok[i] - '0');
    }
    if (idx > 255)
        return false;
    reg.cls = tok[0] == 'i' ? isa::RegClass::Int : isa::RegClass::Fp;
    reg.idx = uint8_t(idx);
    return true;
}

const std::map<std::string, isa::Op> &
opsByName()
{
    static const std::map<std::string, isa::Op> map = [] {
        std::map<std::string, isa::Op> m;
        for (unsigned i = 0; i < unsigned(isa::Op::NumOps); ++i)
            m[isa::opName(isa::Op(i))] = isa::Op(i);
        return m;
    }();
    return map;
}

} // namespace

ShrunkCase
shrinkCase(isa::Program program,
           std::vector<harness::ExperimentConfig> cfgs,
           const FailPredicate &fails)
{
    // Phase 1: drop configurations greedily. Iterate until no single
    // removal keeps the failure (dropping one config can make another
    // droppable, e.g. when the failure is a cross-config identity
    // needing exactly two points).
    bool changed = true;
    while (changed && cfgs.size() > 1) {
        changed = false;
        for (size_t i = 0; i < cfgs.size() && cfgs.size() > 1; ++i) {
            std::vector<harness::ExperimentConfig> cand = cfgs;
            cand.erase(cand.begin() + long(i));
            if (fails(program, cand)) {
                cfgs = std::move(cand);
                changed = true;
                --i;
            }
        }
    }

    // Phase 2: ddmin over instruction ranges, halving the chunk size
    // down to single instructions, to a fixpoint.
    changed = true;
    while (changed) {
        changed = false;
        for (size_t chunk = std::max<size_t>(program.size() / 2, 1);
             chunk >= 1; chunk /= 2) {
            for (size_t s = 0; s + 1 <= program.size();) {
                size_t e = std::min(s + chunk, program.size());
                std::optional<isa::Program> cand =
                    deleteRange(program, s, e);
                if (cand && cand->size() < program.size() &&
                    fails(*cand, cfgs)) {
                    program = std::move(*cand);
                    changed = true;
                    // Do not advance: the next chunk slid into place.
                } else {
                    s += chunk;
                }
            }
            if (chunk == 1)
                break;
        }
    }

    return ShrunkCase{std::move(program), std::move(cfgs)};
}

std::string
formatRepro(const ShrunkCase &c)
{
    std::string out = "nbl-fuzz-repro v1\n";
    for (const harness::ExperimentConfig &cfg : c.cfgs) {
        out += strfmt("config %llu %llu %u %u %u %u",
                      (unsigned long long)cfg.cacheBytes,
                      (unsigned long long)cfg.lineBytes, cfg.ways,
                      cfg.missPenalty, cfg.issueWidth,
                      cfg.fillWritePorts);
        const core::MshrPolicy pol =
            cfg.customPolicy ? *cfg.customPolicy
                             : core::makePolicy(cfg.config);
        out += strfmt(" policy %d %d %d %d %d %d %d %d %u\n",
                      int(pol.mode), pol.numMshrs, pol.maxMisses,
                      pol.subBlocks, pol.missesPerSubBlock,
                      pol.fetchesPerSet,
                      int(pol.fetchesPerSetTracksWays),
                      int(pol.storeMode), pol.fillExtraCycles);
        // Optional continuation lines (v1 readers without hierarchy
        // support reject them, which is the correct failure mode:
        // the case does not reproduce without the hierarchy).
        if (!cfg.hierarchy.degenerate()) {
            out += strfmt("hier %u\n",
                          cfg.hierarchy.memChannelInterval);
            for (const core::LevelConfig &lc : cfg.hierarchy.levels) {
                const core::MshrPolicy &lp = lc.policy;
                out += strfmt(
                    "level %llu %llu %u %u %u"
                    " policy %d %d %d %d %d %d %d %d %u\n",
                    (unsigned long long)lc.cacheBytes,
                    (unsigned long long)lc.lineBytes, lc.ways,
                    lc.hitLatency, lc.channelInterval, int(lp.mode),
                    lp.numMshrs, lp.maxMisses, lp.subBlocks,
                    lp.missesPerSubBlock, lp.fetchesPerSet,
                    int(lp.fetchesPerSetTracksWays), int(lp.storeMode),
                    lp.fillExtraCycles);
            }
        }
    }
    for (size_t pc = 0; pc < c.program.size(); ++pc) {
        const isa::Instr &in = c.program.at(pc);
        out += strfmt("instr %s %s%u %s%u %s%u %lld %u\n",
                      isa::opName(in.op), regClassToken(in.dst.cls),
                      unsigned(in.dst.idx),
                      regClassToken(in.src1.cls),
                      unsigned(in.src1.idx),
                      regClassToken(in.src2.cls),
                      unsigned(in.src2.idx), (long long)in.imm,
                      unsigned(in.size));
    }
    return out;
}

bool
parseRepro(const std::string &text, ShrunkCase &out)
{
    out = ShrunkCase{};
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != "nbl-fuzz-repro v1")
        return false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kind;
        ls >> kind;
        if (kind == "config") {
            harness::ExperimentConfig cfg;
            std::string marker;
            core::MshrPolicy pol;
            int mode = 0, tracks = 0, store = 0;
            ls >> cfg.cacheBytes >> cfg.lineBytes >> cfg.ways >>
                cfg.missPenalty >> cfg.issueWidth >>
                cfg.fillWritePorts >> marker >> mode >> pol.numMshrs >>
                pol.maxMisses >> pol.subBlocks >>
                pol.missesPerSubBlock >> pol.fetchesPerSet >> tracks >>
                store >> pol.fillExtraCycles;
            if (!ls || marker != "policy" || mode < 0 ||
                mode > int(core::CacheMode::Inverted) || store < 0 ||
                store > 1)
                return false;
            pol.mode = core::CacheMode(mode);
            pol.fetchesPerSetTracksWays = tracks != 0;
            pol.storeMode = core::StoreMode(store);
            pol.label = strfmt("repro cfg %zu", out.cfgs.size());
            cfg.customPolicy = pol;
            out.cfgs.push_back(cfg);
        } else if (kind == "hier") {
            if (out.cfgs.empty())
                return false;
            unsigned interval = 0;
            ls >> interval;
            if (!ls)
                return false;
            out.cfgs.back().hierarchy.memChannelInterval = interval;
        } else if (kind == "level") {
            if (out.cfgs.empty())
                return false;
            core::LevelConfig lc;
            std::string marker;
            core::MshrPolicy pol;
            int mode = 0, tracks = 0, store = 0;
            ls >> lc.cacheBytes >> lc.lineBytes >> lc.ways >>
                lc.hitLatency >> lc.channelInterval >> marker >> mode >>
                pol.numMshrs >> pol.maxMisses >> pol.subBlocks >>
                pol.missesPerSubBlock >> pol.fetchesPerSet >> tracks >>
                store >> pol.fillExtraCycles;
            if (!ls || marker != "policy" ||
                mode != int(core::CacheMode::MshrFile) || store < 0 ||
                store > 1 || pol.numMshrs == 0 ||
                pol.fetchesPerSet == 0)
                return false;
            pol.mode = core::CacheMode(mode);
            pol.fetchesPerSetTracksWays = tracks != 0;
            pol.storeMode = core::StoreMode(store);
            lc.policy = pol;
            out.cfgs.back().hierarchy.levels.push_back(lc);
        } else if (kind == "instr") {
            std::string op, dst, s1, s2;
            long long imm = 0;
            unsigned size = 8;
            ls >> op >> dst >> s1 >> s2 >> imm >> size;
            if (!ls)
                return false;
            auto it = opsByName().find(op);
            isa::Instr in;
            if (it == opsByName().end() || !parseReg(dst, in.dst) ||
                !parseReg(s1, in.src1) || !parseReg(s2, in.src2) ||
                size > 255)
                return false;
            in.op = it->second;
            in.imm = imm;
            in.size = uint8_t(size);
            out.program.push(in);
        } else {
            return false;
        }
    }
    return !out.cfgs.empty() && out.program.size() > 0 &&
           out.program.validate(/*fail_fatal=*/false);
}

} // namespace nbl::check
