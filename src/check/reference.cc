#include "check/reference.hh"

#include <algorithm>
#include <vector>

#include "exec/interpreter.hh"
#include "exec/stepping.hh"

namespace nbl::check
{

namespace
{

/**
 * Minimal per-set LRU tag store, written from the MODEL.md contract:
 * a lookup hit refreshes recency, a fill of an absent line takes an
 * invalid way if one exists and otherwise evicts the least recently
 * used line. Fully associative (ways == 0) is one set of all lines.
 */
class RefTags
{
  public:
    RefTags(uint64_t cache_bytes, uint64_t line_bytes, unsigned ways)
        : line_(line_bytes),
          ways_(ways ? ways
                     : unsigned(cache_bytes / line_bytes)),
          sets_(ways ? cache_bytes / line_bytes / ways : 1),
          tag_(sets_ * ways_, 0), stamp_(sets_ * ways_, 0)
    {
    }

    bool
    lookup(uint64_t addr, bool touch)
    {
        uint64_t line = addr / line_;
        uint64_t set = line % sets_;
        uint64_t tag = line / sets_;
        for (unsigned w = 0; w < ways_; ++w) {
            size_t i = set * ways_ + w;
            if (stamp_[i] != 0 && tag_[i] == tag) {
                if (touch)
                    stamp_[i] = ++clock_;
                return true;
            }
        }
        return false;
    }

    /** Fill an absent line; returns true if a valid line was evicted.
     *  (The blocking model only fills after a lookup miss, so the
     *  line is never already present.) */
    bool
    fill(uint64_t addr)
    {
        uint64_t line = addr / line_;
        uint64_t set = line % sets_;
        size_t victim = set * ways_;
        for (unsigned w = 0; w < ways_; ++w) {
            size_t i = set * ways_ + w;
            if (stamp_[i] == 0) {
                victim = i;
                break;
            }
            if (stamp_[i] < stamp_[victim])
                victim = i;
        }
        bool evicted = stamp_[victim] != 0;
        tag_[victim] = line / sets_;
        stamp_[victim] = ++clock_;
        return evicted;
    }

  private:
    uint64_t line_;
    unsigned ways_;
    uint64_t sets_;
    std::vector<uint64_t> tag_;
    /** 0 = invalid; otherwise the LRU recency stamp. */
    std::vector<uint64_t> stamp_;
    uint64_t clock_ = 0;
};

} // namespace

ReferenceResult
referenceRun(const isa::Program &program, mem::SparseMemory &data,
             const ReferenceConfig &cfg)
{
    // Pipelined-bus penalty (MODEL.md / paper section 5.2): 14 cycles
    // for the first 16 bytes, 2 per additional 16 bytes.
    uint64_t penalty = cfg.missPenalty;
    if (penalty == 0) {
        uint64_t chunks = std::max<uint64_t>(1, (cfg.lineBytes + 15) / 16);
        penalty = 14 + 2 * (chunks - 1);
    }

    RefTags tags(cfg.cacheBytes, cfg.lineBytes, cfg.ways);
    ReferenceResult r;

    // ready[i]: cycle at which linear register i is valid. Slot 0 is
    // the hard-wired integer zero register: always ready, never set.
    uint64_t ready[isa::numIntRegs + isa::numFpRegs] = {};
    auto set_ready = [&](isa::RegId reg, uint64_t at) {
        unsigned i = reg.destLinear();
        if (i != 0)
            ready[i] = at;
    };

    // nc: the earliest cycle the next instruction can issue at. Every
    // instruction occupies one issue slot; the clock only moves
    // through the three waits of the MODEL.md timing steps.
    uint64_t nc = 0;

    exec::Interpreter interp(program, data);
    r.hitInstructionCap = exec::stepProgram(
        program, interp, cfg.maxInstructions,
        [&](const isa::Instr &in, size_t /*pc*/,
            const exec::StepResult &step) {
            ++r.instructions;

            // 1. True-data-dependency wait: all sources, plus the
            //    destination of a load (the WAW interlock).
            uint64_t t = nc;
            unsigned ns = in.numSrcs();
            if (ns >= 1)
                t = std::max(t, ready[in.src1.destLinear()]);
            if (ns >= 2)
                t = std::max(t, ready[in.src2.destLinear()]);
            if (in.isLoad())
                t = std::max(t, ready[in.dst.destLinear()]);
            r.depStallCycles += t - nc;

            if (in.isLoad()) {
                ++r.loads;
                if (tags.lookup(step.effAddr, /*touch=*/true)) {
                    ++r.loadHits;
                    set_ready(in.dst, t + 1);
                    nc = t + 1;
                } else {
                    // Lockup miss: the processor holds for the full
                    // fill; data and the next issue slot both arrive
                    // at the fill's completion.
                    uint64_t complete = t + 1 + penalty;
                    r.blockStallCycles += complete - (t + 1);
                    ++r.loadPrimaryMisses;
                    ++r.fetches;
                    r.evictions += tags.fill(step.effAddr);
                    set_ready(in.dst, complete);
                    nc = complete;
                }
            } else if (in.isStore()) {
                ++r.stores;
                if (tags.lookup(step.effAddr, /*touch=*/true)) {
                    // Write-through: free.
                    ++r.storeHits;
                    nc = t + 1;
                } else {
                    ++r.storeMisses;
                    if (cfg.writeMissAllocate) {
                        // Fetch-on-write with a full stall.
                        uint64_t complete = t + 1 + penalty;
                        r.blockStallCycles += complete - (t + 1);
                        ++r.storePrimaryMisses;
                        ++r.fetches;
                        r.evictions += tags.fill(step.effAddr);
                        nc = complete;
                    } else {
                        // Written around: straight to the next level.
                        nc = t + 1;
                    }
                }
            } else {
                if (in.isBranch())
                    ++r.branches;
                if (in.hasDst())
                    set_ready(in.dst, t + 1);
                nc = t + 1;
            }
        });

    r.cycles = nc;
    return r;
}

} // namespace nbl::check
