/**
 * @file
 * Greedy shrinker for differential-fuzz failures.
 *
 * A raw failing point is a generated program (hundreds of dynamic
 * instructions) crossed with ~20 configurations -- too big to reason
 * about. shrinkCase() minimizes both sides while the caller's
 * predicate still fails: configurations are dropped greedily, then
 * instruction ranges are deleted ddmin-style (with branch targets
 * remapped across the cut) until a fixpoint.
 *
 * The result round-trips through a self-contained text format
 * (formatRepro / parseRepro) suitable for pasting into a regression
 * test or re-running with `nbl-fuzz --repro=FILE`.
 */

#ifndef NBL_CHECK_SHRINK_HH
#define NBL_CHECK_SHRINK_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "isa/program.hh"

namespace nbl::check
{

/** Does this (program, configs) point still fail? The shrinker only
 *  keeps a candidate when the predicate returns true for it. */
using FailPredicate = std::function<bool(
    const isa::Program &,
    const std::vector<harness::ExperimentConfig> &)>;

/** A minimized failing point. */
struct ShrunkCase
{
    isa::Program program{"repro"};
    std::vector<harness::ExperimentConfig> cfgs;
};

/**
 * Minimize (program, cfgs) under `fails`. The inputs must fail (the
 * caller checked); the output is a local minimum: no single config
 * can be dropped and no contiguous instruction range deleted without
 * the failure disappearing. Candidate programs always keep a trailing
 * Halt and must pass validate(); a deletion that breaks either is
 * simply not taken. Deleting a loop's decrement can leave an infinite
 * loop -- run candidates with a bounded maxInstructions (the
 * differential runner's cap handles this).
 */
ShrunkCase shrinkCase(isa::Program program,
                      std::vector<harness::ExperimentConfig> cfgs,
                      const FailPredicate &fails);

/** Serialize a case as the `nbl-fuzz-repro v1` text format. */
std::string formatRepro(const ShrunkCase &c);

/**
 * Parse the text format back. Returns false (and leaves `out`
 * unspecified) on malformed input; the parsed program is validated.
 */
bool parseRepro(const std::string &text, ShrunkCase &out);

} // namespace nbl::check

#endif // NBL_CHECK_SHRINK_HH
