/**
 * @file
 * Lowering: assemble allocated kernels into a flat isa::Program.
 *
 * Program shape (instruction indices):
 *
 *   LImm  r31, spill_area_base
 *   LImm  r30, 0                      ; outer rep counter
 *   LImm  r29, outer_reps
 *   outer_head:
 *     for each kernel:
 *       <preamble>
 *       head_k:
 *         <body with spill code>
 *         AddI counter, counter, step ; counted loops
 *         BLt  counter, limit, head_k ; or BNe cond, r0, head_k
 *     AddI r30, r30, 1
 *     BLt  r30, r29, outer_head
 *   Halt
 */

#ifndef NBL_COMPILER_LOWER_HH
#define NBL_COMPILER_LOWER_HH

#include <cstdint>
#include <vector>

#include "compiler/regalloc.hh"
#include "compiler/vir.hh"
#include "isa/program.hh"

namespace nbl::compiler
{

/** Base address of the spill area in simulated memory. */
inline constexpr uint64_t spillAreaBase = 0x8000;
/** Size of the spill area in bytes (512 eight-byte slots). */
inline constexpr uint64_t spillAreaBytes = 4096;

/** Assemble a program from its kernels' allocation results. */
isa::Program lower(const KernelProgram &kp,
                   const std::vector<RegAllocResult> &allocs);

} // namespace nbl::compiler

#endif // NBL_COMPILER_LOWER_HH
