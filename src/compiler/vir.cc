#include "compiler/vir.hh"

namespace nbl::compiler
{

unsigned
VOp::numSrcs() const
{
    // Mirror isa::Instr::numSrcs for the shared opcodes.
    isa::Instr in;
    in.op = op;
    return in.numSrcs();
}

uint64_t
bodyCostPerIteration(const Kernel &k)
{
    // Body ops + induction update + backward branch.
    uint64_t n = k.body.size() + 1;
    if (k.kind == LoopKind::Counted)
        n += 1;
    return n;
}

uint64_t
estimateDynamicSize(const KernelProgram &kp)
{
    uint64_t total = 0;
    for (const Kernel &k : kp.kernels) {
        uint64_t trips = k.kind == LoopKind::Counted
                             ? uint64_t(k.trips)
                             : k.expectedTrips;
        total += k.preamble.size() + trips * bodyCostPerIteration(k);
    }
    return total * kp.outerReps + 4; // prologue + halt
}

} // namespace nbl::compiler
