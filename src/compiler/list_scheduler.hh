/**
 * @file
 * List scheduler parameterized by the assumed load latency.
 *
 * This is the reproduction of the paper's central code-scheduling
 * knob (section 3.3): the compiler is told that a load takes
 * `load_latency` cycles to reach its consumer and tries to place that
 * many independent instructions between a load and its first use. The
 * simulator itself always charges one cycle on a hit, so the scheduled
 * load latency expresses how much *miss* latency the schedule can
 * tolerate, exactly as in the paper.
 *
 * The scheduler is a classic latency-weighted list scheduler over the
 * body's dependence DAG (RAW/WAR/WAW register edges plus conservative
 * same-space memory ordering). It emits one operation per virtual
 * issue slot, choosing the ready op with the greatest height (longest
 * latency-weighted path to the end of the body).
 */

#ifndef NBL_COMPILER_LIST_SCHEDULER_HH
#define NBL_COMPILER_LIST_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "compiler/vir.hh"

namespace nbl::compiler
{

/** Dependence edge kinds (exposed for tests). */
enum class DepKind { Raw, War, Waw, Mem };

/** One dependence edge from op `from` to op `to`. */
struct DepEdge
{
    unsigned from;
    unsigned to;
    unsigned latency;
    DepKind kind;
};

/**
 * Build the dependence edges of a kernel body. Edges always point
 * forward in the original order.
 */
std::vector<DepEdge> buildDeps(const std::vector<VOp> &body,
                               int load_latency);

/**
 * Schedule the body for the given assumed load latency; returns the
 * ops in their new order. load_latency == 1 approximates the original
 * order (hit scheduling).
 */
std::vector<VOp> scheduleBody(const std::vector<VOp> &body,
                              int load_latency,
                              bool aggressive_hoist = false);

} // namespace nbl::compiler

#endif // NBL_COMPILER_LIST_SCHEDULER_HH
