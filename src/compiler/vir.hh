/**
 * @file
 * Virtual-register IR for the mini compiler.
 *
 * Workloads are written as kernels: an innermost loop body over
 * virtual registers plus a preamble that materializes constants and
 * array base addresses. The compiler pipeline (schedule -> allocate ->
 * lower) turns a KernelProgram into an isa::Program. The scheduler's
 * assumed load latency is the paper's central code-scheduling
 * parameter (section 3.3, item 1).
 *
 * Conventions:
 *  - values defined in the preamble are "pinned": they live across
 *    loop iterations and get dedicated physical registers;
 *  - body temporaries are SSA (defined once per iteration);
 *  - loop-carried updates (pointer bumps, chased pointers) are
 *    expressed as redefinitions of pinned virtual registers.
 */

#ifndef NBL_COMPILER_VIR_HH
#define NBL_COMPILER_VIR_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "isa/instr.hh"

namespace nbl::compiler
{

/** A virtual register. */
struct VReg
{
    static constexpr uint32_t invalidId = UINT32_MAX;

    uint32_t id = invalidId;
    isa::RegClass cls = isa::RegClass::Int;

    bool valid() const { return id != invalidId; }
    bool operator==(const VReg &) const = default;
};

/** One IR operation on virtual registers. */
struct VOp
{
    isa::Op op = isa::Op::Nop;
    VReg dst;
    VReg src1;
    VReg src2;
    int64_t imm = 0;
    uint8_t size = 8;
    /**
     * Memory-dependence space for memory ops: ops in different spaces
     * never alias (distinct arrays); ops in the same space are ordered
     * conservatively (load-store, store-load, store-store). Spaces are
     * allocated by the workload through AddressSpace/KernelBuilder.
     */
    int32_t space = -1;

    bool isLoad() const { return op == isa::Op::Ld || op == isa::Op::Fld; }
    bool isStore() const { return op == isa::Op::St || op == isa::Op::Fst; }
    bool isMem() const { return isLoad() || isStore(); }
    bool
    hasDst() const
    {
        return dst.valid();
    }
    unsigned numSrcs() const;
};

/** Loop forms supported by the lowerer. */
enum class LoopKind
{
    Counted,       ///< counter from start, trips iterations of step.
    WhileNonZero,  ///< do body while cond != 0.
};

/** One innermost loop. */
struct Kernel
{
    std::string name;
    std::vector<VOp> preamble;
    std::vector<VOp> body;

    LoopKind kind = LoopKind::Counted;
    VReg counter;       ///< Counted: induction variable (pinned).
    VReg limit;         ///< Counted: bound (pinned).
    int64_t start = 0;
    int64_t trips = 0;
    int64_t step = 1;
    VReg cond;          ///< WhileNonZero: pinned, redefined in body.
    uint64_t expectedTrips = 0;

    /** Virtual registers that must survive across iterations. */
    std::unordered_set<uint32_t> pinned;
};

/** A whole synthetic benchmark: kernels run in order, repeated. */
struct KernelProgram
{
    std::string name;
    std::vector<Kernel> kernels;
    uint64_t outerReps = 1;
    /** First id never used by any vreg (for renaming passes). */
    uint32_t nextVRegId = 0;
    /**
     * Vectorizable codes (tomcatv-style inner loops): the compiler
     * hoists loads well past the nominal scheduled latency, as a
     * trace-scheduling compiler does on unrolled vector loops. The
     * scheduler gives loads a priority boost proportional to the
     * scheduled load latency when this is set.
     */
    bool aggressiveHoist = false;
};

/** Number of dynamic instructions one iteration of a kernel costs
 *  before spills (body + counter update + branch). */
uint64_t bodyCostPerIteration(const Kernel &k);

/** Estimated dynamic instructions of the whole program (pre-spill). */
uint64_t estimateDynamicSize(const KernelProgram &kp);

} // namespace nbl::compiler

#endif // NBL_COMPILER_VIR_HH
