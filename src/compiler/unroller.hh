/**
 * @file
 * Loop unroller.
 *
 * Replicates a counted kernel's body `factor` times. Temporaries are
 * renamed per copy; loop-carried redefinitions of pinned registers
 * (pointer bumps, accumulators) are left in place so sequential
 * semantics chain naturally across copies. Reads of the induction
 * variable in copy i > 0 are rewritten to a fresh `counter + i*step`
 * temporary. The trip count divides by the factor and the step
 * multiplies by it, so the iteration space is unchanged.
 *
 * Unrolling is how the paper's compiler exposes independent loads for
 * the scheduler to hoist (tomcatv's loops are "unrolled many times",
 * section 4).
 */

#ifndef NBL_COMPILER_UNROLLER_HH
#define NBL_COMPILER_UNROLLER_HH

#include "compiler/vir.hh"

namespace nbl::compiler
{

/**
 * Unroll a counted kernel by factor (trips must be divisible by it;
 * factor 1 returns the kernel unchanged). While-loops are rejected:
 * their early exit cannot be replicated.
 * @param next_id In-out vreg id counter (KernelProgram::nextVRegId).
 */
Kernel unroll(const Kernel &kernel, unsigned factor, uint32_t &next_id);

} // namespace nbl::compiler

#endif // NBL_COMPILER_UNROLLER_HH
