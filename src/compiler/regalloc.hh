/**
 * @file
 * Register allocation with spilling.
 *
 * Pinned virtual registers (preamble constants, induction variables,
 * chased pointers) get dedicated physical registers for the whole
 * kernel. Body temporaries are allocated by linear scan over the
 * *scheduled* order; when the pool is exhausted a temporary is spilled
 * to a stack slot: its definition is followed by a store and each use
 * is preceded by a reload through reserved scratch registers.
 *
 * Spill code goes through the data cache like any other reference, so
 * -- as in the paper (section 3.3, Figure 4) -- the number of data
 * references varies with the scheduled load latency: longer assumed
 * latencies stretch live ranges and induce more spills.
 *
 * Register conventions (integer):
 *   r0         hard-wired zero
 *   r1  - r26  allocatable
 *   r27, r28   spill-reload scratch
 *   r29, r30   outer-loop bound / counter (lowerer)
 *   r31        spill-area base pointer
 * Floating point: f0 - f29 allocatable, f30/f31 scratch.
 */

#ifndef NBL_COMPILER_REGALLOC_HH
#define NBL_COMPILER_REGALLOC_HH

#include <cstdint>
#include <vector>

#include "compiler/vir.hh"
#include "isa/program.hh"

namespace nbl::compiler
{

/** Fixed register roles (see file comment). */
namespace reg_conv
{
inline constexpr isa::RegId spillBase = isa::intReg(31);
inline constexpr isa::RegId outerCounter = isa::intReg(30);
inline constexpr isa::RegId outerLimit = isa::intReg(29);
inline constexpr isa::RegId scratchInt0 = isa::intReg(27);
inline constexpr isa::RegId scratchInt1 = isa::intReg(28);
inline constexpr isa::RegId scratchFp0 = isa::fpReg(30);
inline constexpr isa::RegId scratchFp1 = isa::fpReg(31);
inline constexpr unsigned numAllocInt = 26; ///< r1..r26
inline constexpr unsigned numAllocFp = 30;  ///< f0..f29
} // namespace reg_conv

/** Output of allocating one kernel. */
struct RegAllocResult
{
    std::vector<isa::Instr> preamble;
    std::vector<isa::Instr> body;
    isa::RegId counter{};  ///< Physical induction register (Counted).
    isa::RegId limit{};
    isa::RegId cond{};     ///< Physical condition register (While).
    unsigned spillSlots = 0;     ///< Slots used by this kernel.
    unsigned spillLoads = 0;     ///< Static reloads inserted.
    unsigned spillStores = 0;    ///< Static spill stores inserted.
};

/**
 * Allocate registers for a kernel whose body has been scheduled.
 * @param kernel The kernel (for the preamble and pinned set).
 * @param scheduled_body The scheduled body operations.
 * @param first_spill_slot First free 8-byte slot in the spill area
 *        (slots are shared program-wide).
 */
RegAllocResult allocate(const Kernel &kernel,
                        const std::vector<VOp> &scheduled_body,
                        unsigned first_spill_slot);

} // namespace nbl::compiler

#endif // NBL_COMPILER_REGALLOC_HH
