#include "compiler/unroller.hh"

#include <unordered_map>

#include "util/log.hh"

namespace nbl::compiler
{

Kernel
unroll(const Kernel &kernel, unsigned factor, uint32_t &next_id)
{
    if (factor == 0)
        fatal("unroll factor must be >= 1");
    if (factor == 1)
        return kernel;
    if (kernel.kind != LoopKind::Counted)
        fatal("kernel %s: only counted loops can be unrolled",
              kernel.name.c_str());
    if (kernel.trips % factor != 0)
        fatal("kernel %s: trips (%lld) not divisible by unroll factor "
              "%u", kernel.name.c_str(),
              static_cast<long long>(kernel.trips), factor);

    Kernel out = kernel;
    out.body.clear();
    out.trips = kernel.trips / factor;
    out.step = kernel.step * factor;

    for (unsigned copy = 0; copy < factor; ++copy) {
        std::unordered_map<uint32_t, VReg> rename;

        // Copy i reads the induction value counter + i*step.
        VReg iter_counter = kernel.counter;
        bool counter_read = false;
        for (const VOp &op : kernel.body) {
            unsigned ns = op.numSrcs();
            if ((ns >= 1 && op.src1 == kernel.counter) ||
                (ns >= 2 && op.src2 == kernel.counter)) {
                counter_read = true;
                break;
            }
        }
        if (copy > 0 && counter_read) {
            iter_counter = VReg{next_id++, isa::RegClass::Int};
            out.body.push_back(
                VOp{isa::Op::AddI, iter_counter, kernel.counter, {},
                    kernel.step * int64_t(copy), 8, -1});
        }

        auto map_use = [&](VReg v) -> VReg {
            if (!v.valid())
                return v;
            if (v == kernel.counter)
                return iter_counter;
            auto it = rename.find(v.id);
            return it != rename.end() ? it->second : v;
        };

        for (const VOp &op : kernel.body) {
            VOp n = op;
            unsigned ns = op.numSrcs();
            if (ns >= 1)
                n.src1 = map_use(op.src1);
            if (ns >= 2)
                n.src2 = map_use(op.src2);
            if (op.hasDst()) {
                if (kernel.pinned.count(op.dst.id)) {
                    // Loop-carried redefinition: keep the name so the
                    // next copy (and iteration) sees the new value.
                    n.dst = op.dst;
                } else {
                    VReg fresh{next_id++, op.dst.cls};
                    rename[op.dst.id] = fresh;
                    n.dst = fresh;
                }
            }
            out.body.push_back(n);
        }
    }
    return out;
}

} // namespace nbl::compiler
