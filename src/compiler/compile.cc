#include "compiler/compile.hh"

#include "compiler/list_scheduler.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "util/log.hh"

namespace nbl::compiler
{

isa::Program
compile(const KernelProgram &kp, const CompileParams &params,
        CompileInfo *info)
{
    std::vector<RegAllocResult> allocs;
    allocs.reserve(kp.kernels.size());

    unsigned slot = 0;
    CompileInfo ci;
    for (const Kernel &k : kp.kernels) {
        std::vector<VOp> body =
            params.schedule
                ? scheduleBody(k.body, params.loadLatency,
                               kp.aggressiveHoist)
                : k.body;
        RegAllocResult a = allocate(k, body, slot);
        slot += a.spillSlots;
        ci.spillSlots += a.spillSlots;
        ci.spillLoads += a.spillLoads;
        ci.spillStores += a.spillStores;
        allocs.push_back(std::move(a));
    }

    if (uint64_t(slot) * 8 > spillAreaBytes) {
        fatal("program %s needs %u spill slots; spill area holds %llu",
              kp.name.c_str(), slot,
              static_cast<unsigned long long>(spillAreaBytes / 8));
    }

    if (info)
        *info = ci;

    isa::Program prog = lower(kp, allocs);
    return prog;
}

} // namespace nbl::compiler
