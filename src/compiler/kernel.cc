#include "compiler/kernel.hh"

#include <bit>

#include "util/log.hh"

namespace nbl::compiler
{

using isa::Op;
using isa::RegClass;

KernelBuilder::KernelBuilder(std::string name, uint32_t &next_id)
    : next_id_(next_id)
{
    k_.name = std::move(name);
}

VReg
KernelBuilder::fresh(RegClass cls)
{
    return VReg{next_id_++, cls};
}

void
KernelBuilder::requireCls(VReg r, RegClass cls, const char *what) const
{
    if (!r.valid())
        panic("%s: invalid vreg in kernel %s", what, k_.name.c_str());
    if (r.cls != cls)
        panic("%s: wrong register class in kernel %s", what,
              k_.name.c_str());
}

VReg
KernelBuilder::constI(int64_t value)
{
    VReg r = fresh(RegClass::Int);
    k_.preamble.push_back(VOp{Op::LImm, r, {}, {}, value, 8, -1});
    k_.pinned.insert(r.id);
    return r;
}

VReg
KernelBuilder::constF(double value)
{
    VReg r = fresh(RegClass::Fp);
    int64_t bits = std::bit_cast<int64_t>(value);
    k_.preamble.push_back(VOp{Op::LImm, r, {}, {}, bits, 8, -1});
    k_.pinned.insert(r.id);
    return r;
}

void
KernelBuilder::countedLoop(int64_t start, int64_t trips, int64_t step)
{
    if (loop_defined_)
        panic("kernel %s: loop already defined", k_.name.c_str());
    if (trips < 1)
        panic("kernel %s: counted loop needs >= 1 trip", k_.name.c_str());
    if (step < 1)
        panic("kernel %s: step must be positive", k_.name.c_str());
    loop_defined_ = true;
    k_.kind = LoopKind::Counted;
    k_.start = start;
    k_.trips = trips;
    k_.step = step;
    k_.counter = fresh(RegClass::Int);
    k_.limit = fresh(RegClass::Int);
    k_.preamble.push_back(
        VOp{Op::LImm, k_.counter, {}, {}, start, 8, -1});
    k_.preamble.push_back(
        VOp{Op::LImm, k_.limit, {}, {}, start + trips * step, 8, -1});
    k_.pinned.insert(k_.counter.id);
    k_.pinned.insert(k_.limit.id);
}

VReg
KernelBuilder::counter() const
{
    if (k_.kind != LoopKind::Counted || !k_.counter.valid())
        panic("kernel %s: no counted loop", k_.name.c_str());
    return k_.counter;
}

void
KernelBuilder::whileNonZero(VReg cond, uint64_t expected_trips)
{
    if (loop_defined_)
        panic("kernel %s: loop already defined", k_.name.c_str());
    requireCls(cond, RegClass::Int, "whileNonZero");
    if (!k_.pinned.count(cond.id))
        panic("kernel %s: while condition must be pinned",
              k_.name.c_str());
    loop_defined_ = true;
    k_.kind = LoopKind::WhileNonZero;
    k_.cond = cond;
    k_.expectedTrips = expected_trips;
}

VReg
KernelBuilder::bodyOp(Op op, RegClass cls, VReg a, VReg b, int64_t imm)
{
    VReg d = fresh(cls);
    k_.body.push_back(VOp{op, d, a, b, imm, 8, -1});
    return d;
}

#define NBL_BIN_INT(NAME, OP)                                           \
    VReg KernelBuilder::NAME(VReg a, VReg b)                            \
    {                                                                   \
        requireCls(a, RegClass::Int, #NAME);                            \
        requireCls(b, RegClass::Int, #NAME);                            \
        return bodyOp(Op::OP, RegClass::Int, a, b);                     \
    }

NBL_BIN_INT(add, Add)
NBL_BIN_INT(sub, Sub)
NBL_BIN_INT(mul, Mul)
NBL_BIN_INT(and_, And)
NBL_BIN_INT(or_, Or)
NBL_BIN_INT(xor_, Xor)
NBL_BIN_INT(shl, Shl)
NBL_BIN_INT(shr, Shr)
#undef NBL_BIN_INT

#define NBL_IMM_INT(NAME, OP)                                           \
    VReg KernelBuilder::NAME(VReg a, int64_t imm)                       \
    {                                                                   \
        requireCls(a, RegClass::Int, #NAME);                            \
        return bodyOp(Op::OP, RegClass::Int, a, {}, imm);               \
    }

NBL_IMM_INT(addi, AddI)
NBL_IMM_INT(muli, MulI)
NBL_IMM_INT(andi, AndI)
NBL_IMM_INT(shli, ShlI)
NBL_IMM_INT(shri, ShrI)
#undef NBL_IMM_INT

VReg
KernelBuilder::limm(int64_t value)
{
    return bodyOp(Op::LImm, RegClass::Int, {}, {}, value);
}

#define NBL_BIN_FP(NAME, OP)                                            \
    VReg KernelBuilder::NAME(VReg a, VReg b)                            \
    {                                                                   \
        requireCls(a, RegClass::Fp, #NAME);                             \
        requireCls(b, RegClass::Fp, #NAME);                             \
        return bodyOp(Op::OP, RegClass::Fp, a, b);                      \
    }

NBL_BIN_FP(fadd, FAdd)
NBL_BIN_FP(fsub, FSub)
NBL_BIN_FP(fmul, FMul)
NBL_BIN_FP(fdiv, FDiv)
#undef NBL_BIN_FP

VReg
KernelBuilder::load(VReg base, int64_t offset, int32_t space,
                    unsigned size)
{
    requireCls(base, RegClass::Int, "load");
    VReg d = fresh(RegClass::Int);
    k_.body.push_back(VOp{Op::Ld, d, base, {}, offset,
                          static_cast<uint8_t>(size), space});
    return d;
}

VReg
KernelBuilder::fload(VReg base, int64_t offset, int32_t space,
                     unsigned size)
{
    requireCls(base, RegClass::Int, "fload");
    VReg d = fresh(RegClass::Fp);
    k_.body.push_back(VOp{Op::Fld, d, base, {}, offset,
                          static_cast<uint8_t>(size), space});
    return d;
}

void
KernelBuilder::store(VReg base, int64_t offset, VReg value,
                     int32_t space, unsigned size)
{
    requireCls(base, RegClass::Int, "store");
    requireCls(value, RegClass::Int, "store");
    k_.body.push_back(VOp{Op::St, {}, base, value, offset,
                          static_cast<uint8_t>(size), space});
}

void
KernelBuilder::fstore(VReg base, int64_t offset, VReg value,
                      int32_t space, unsigned size)
{
    requireCls(base, RegClass::Int, "fstore");
    requireCls(value, RegClass::Fp, "fstore");
    k_.body.push_back(VOp{Op::Fst, {}, base, value, offset,
                          static_cast<uint8_t>(size), space});
}

void
KernelBuilder::bump(VReg ptr, int64_t delta)
{
    requireCls(ptr, RegClass::Int, "bump");
    if (!k_.pinned.count(ptr.id))
        panic("kernel %s: bump of non-pinned vreg", k_.name.c_str());
    k_.body.push_back(VOp{Op::AddI, ptr, ptr, {}, delta, 8, -1});
}

void
KernelBuilder::assign(VReg dst, VReg src)
{
    if (!k_.pinned.count(dst.id))
        panic("kernel %s: assign to non-pinned vreg", k_.name.c_str());
    if (dst.cls != src.cls)
        panic("kernel %s: assign across register classes",
              k_.name.c_str());
    isa::Op op = dst.cls == RegClass::Int ? Op::AddI : Op::FAdd;
    if (dst.cls == RegClass::Int) {
        k_.body.push_back(VOp{op, dst, src, {}, 0, 8, -1});
    } else {
        // fdst = fsrc + 0.0 would need a zero constant; use FAdd with
        // the same register twice is wrong, so model as FMul by 1.0
        // via... keep it simple: integer assigns only.
        panic("kernel %s: FP assign not supported", k_.name.c_str());
    }
}

Kernel
KernelBuilder::take()
{
    if (!loop_defined_)
        panic("kernel %s: no loop defined", k_.name.c_str());
    if (k_.body.empty())
        panic("kernel %s: empty body", k_.name.c_str());
    return std::move(k_);
}

} // namespace nbl::compiler
