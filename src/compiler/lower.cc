#include "compiler/lower.hh"

#include "util/log.hh"

namespace nbl::compiler
{

using isa::Instr;
using isa::Op;

isa::Program
lower(const KernelProgram &kp, const std::vector<RegAllocResult> &allocs)
{
    if (allocs.size() != kp.kernels.size())
        panic("lower: allocation results do not match kernels");

    isa::Program prog(kp.name);

    auto limm = [&](isa::RegId dst, int64_t v) {
        Instr in;
        in.op = Op::LImm;
        in.dst = dst;
        in.imm = v;
        prog.push(in);
    };

    limm(reg_conv::spillBase, int64_t(spillAreaBase));
    limm(reg_conv::outerCounter, 0);
    limm(reg_conv::outerLimit, int64_t(kp.outerReps));
    size_t outer_head = prog.size();

    for (size_t ki = 0; ki < kp.kernels.size(); ++ki) {
        const Kernel &k = kp.kernels[ki];
        const RegAllocResult &a = allocs[ki];

        for (const Instr &in : a.preamble)
            prog.push(in);

        size_t head = prog.size();
        for (const Instr &in : a.body)
            prog.push(in);

        if (k.kind == LoopKind::Counted) {
            Instr bump;
            bump.op = Op::AddI;
            bump.dst = a.counter;
            bump.src1 = a.counter;
            bump.imm = k.step;
            prog.push(bump);

            Instr br;
            br.op = Op::BLt;
            br.src1 = a.counter;
            br.src2 = a.limit;
            br.imm = int64_t(head);
            prog.push(br);
        } else {
            Instr br;
            br.op = Op::BNe;
            br.src1 = a.cond;
            br.src2 = isa::regZero;
            br.imm = int64_t(head);
            prog.push(br);
        }
    }

    Instr bump;
    bump.op = Op::AddI;
    bump.dst = reg_conv::outerCounter;
    bump.src1 = reg_conv::outerCounter;
    bump.imm = 1;
    prog.push(bump);

    Instr br;
    br.op = Op::BLt;
    br.src1 = reg_conv::outerCounter;
    br.src2 = reg_conv::outerLimit;
    br.imm = int64_t(outer_head);
    prog.push(br);

    Instr halt;
    halt.op = Op::Halt;
    prog.push(halt);

    prog.validate();
    return prog;
}

} // namespace nbl::compiler
