#include "compiler/regalloc.hh"

#include <algorithm>
#include <unordered_map>

#include "util/log.hh"

namespace nbl::compiler
{

using isa::Op;
using isa::RegClass;
using isa::RegId;

namespace
{

/** Allocation state for one register class. */
class Pool
{
  public:
    Pool(RegClass cls, unsigned first, unsigned count)
        : cls_(cls)
    {
        for (unsigned i = 0; i < count; ++i)
            free_.push_back(first + count - 1 - i); // ascending pops
    }

    bool empty() const { return free_.empty(); }

    RegId
    take()
    {
        if (free_.empty())
            panic("register pool exhausted");
        unsigned idx = free_.back();
        free_.pop_back();
        return RegId{cls_, static_cast<uint8_t>(idx)};
    }

    void give(RegId r) { free_.push_back(r.idx); }

  private:
    RegClass cls_;
    std::vector<unsigned> free_;
};

struct TempInfo
{
    int def = -1;
    int lastUse = -1;
    bool spilled = false;
    unsigned slot = 0;    ///< Spill slot if spilled.
    RegId phys{};         ///< Physical register if not spilled.
    bool assigned = false;
    RegClass cls = RegClass::Int;
};

} // namespace

RegAllocResult
allocate(const Kernel &kernel, const std::vector<VOp> &scheduled_body,
         unsigned first_spill_slot)
{
    RegAllocResult res;

    Pool int_pool(RegClass::Int, 1, reg_conv::numAllocInt);
    Pool fp_pool(RegClass::Fp, 0, reg_conv::numAllocFp);
    auto pool_for = [&](RegClass c) -> Pool & {
        return c == RegClass::Int ? int_pool : fp_pool;
    };

    // --- Pinned registers: dedicated for the whole kernel. ----------
    std::unordered_map<uint32_t, RegId> pinned_phys;
    auto pin = [&](VReg v) {
        if (!v.valid() || pinned_phys.count(v.id))
            return;
        if (pool_for(v.cls).empty()) {
            fatal("kernel %s: too many pinned values for the register "
                  "file", kernel.name.c_str());
        }
        pinned_phys[v.id] = pool_for(v.cls).take();
    };
    for (const VOp &op : kernel.preamble)
        pin(op.dst);
    if (kernel.kind == LoopKind::Counted) {
        pin(kernel.counter);
        pin(kernel.limit);
    } else {
        pin(kernel.cond);
    }
    for (uint32_t id : kernel.pinned) {
        if (!pinned_phys.count(id)) {
            fatal("kernel %s: pinned vreg %u not defined in preamble",
                  kernel.name.c_str(), id);
        }
    }

    // --- Temporary live ranges over the scheduled body. -------------
    std::unordered_map<uint32_t, TempInfo> temps;
    auto is_pinned = [&](VReg v) {
        return pinned_phys.count(v.id) != 0;
    };
    for (int i = 0; i < int(scheduled_body.size()); ++i) {
        const VOp &op = scheduled_body[i];
        auto use = [&](VReg v) {
            if (!v.valid() || is_pinned(v))
                return;
            auto it = temps.find(v.id);
            if (it == temps.end() || it->second.def < 0) {
                fatal("kernel %s: temporary used before definition "
                      "(loop-carried temp must be pinned)",
                      kernel.name.c_str());
            }
            it->second.lastUse = i;
        };
        unsigned ns = op.numSrcs();
        if (ns >= 1)
            use(op.src1);
        if (ns >= 2)
            use(op.src2);
        if (op.hasDst() && !is_pinned(op.dst)) {
            TempInfo &t = temps[op.dst.id];
            if (t.def >= 0) {
                fatal("kernel %s: temporary redefined (non-SSA temp)",
                      kernel.name.c_str());
            }
            t.def = i;
            t.lastUse = i;
            t.cls = op.dst.cls;
        }
    }

    // --- Linear scan: assign or spill in definition order. ----------
    // expiring[i]: temps whose last use is at op i.
    std::vector<std::vector<uint32_t>> expiring(scheduled_body.size());
    for (auto &[id, t] : temps)
        expiring[t.lastUse].push_back(id);

    unsigned next_slot = first_spill_slot;
    for (int i = 0; i < int(scheduled_body.size()); ++i) {
        const VOp &op = scheduled_body[i];
        // Free registers whose interval ended strictly before i.
        if (i > 0) {
            for (uint32_t id : expiring[i - 1]) {
                TempInfo &t = temps[id];
                if (t.assigned)
                    pool_for(t.cls).give(t.phys);
            }
        }
        if (op.hasDst() && !is_pinned(op.dst)) {
            TempInfo &t = temps[op.dst.id];
            Pool &pool = pool_for(t.cls);
            if (!pool.empty()) {
                t.phys = pool.take();
                t.assigned = true;
            } else {
                t.spilled = true;
                t.slot = next_slot++;
            }
        }
    }

    // --- Rewrite into physical instructions with spill code. --------
    auto slot_off = [](unsigned slot) { return int64_t(slot) * 8; };
    auto map_reg = [&](VReg v) -> RegId {
        auto it = pinned_phys.find(v.id);
        if (it != pinned_phys.end())
            return it->second;
        TempInfo &t = temps.at(v.id);
        if (!t.spilled && !t.assigned)
            panic("unassigned temporary survived allocation");
        return t.phys;
    };

    for (const VOp &op : kernel.preamble) {
        isa::Instr in;
        in.op = op.op;
        in.dst = map_reg(op.dst);
        in.imm = op.imm;
        res.preamble.push_back(in);
    }

    for (const VOp &op : scheduled_body) {
        isa::Instr in;
        in.op = op.op;
        in.imm = op.imm;
        in.size = op.size;

        auto reload = [&](VReg v, RegId scratch) -> RegId {
            if (is_pinned(v))
                return pinned_phys.at(v.id);
            TempInfo &t = temps.at(v.id);
            if (!t.spilled)
                return t.phys;
            isa::Instr ld;
            ld.op = v.cls == RegClass::Int ? Op::Ld : Op::Fld;
            ld.dst = scratch;
            ld.src1 = reg_conv::spillBase;
            ld.imm = slot_off(t.slot);
            ld.size = 8;
            res.body.push_back(ld);
            ++res.spillLoads;
            return scratch;
        };

        unsigned ns = op.numSrcs();
        if (ns >= 1) {
            in.src1 = reload(op.src1, op.src1.cls == RegClass::Int
                                          ? reg_conv::scratchInt0
                                          : reg_conv::scratchFp0);
        }
        if (ns >= 2) {
            in.src2 = reload(op.src2, op.src2.cls == RegClass::Int
                                          ? reg_conv::scratchInt1
                                          : reg_conv::scratchFp1);
        }

        bool dst_spilled = false;
        unsigned dst_slot = 0;
        if (op.hasDst()) {
            if (is_pinned(op.dst)) {
                in.dst = pinned_phys.at(op.dst.id);
            } else {
                TempInfo &t = temps.at(op.dst.id);
                if (t.spilled) {
                    dst_spilled = true;
                    dst_slot = t.slot;
                    in.dst = op.dst.cls == RegClass::Int
                                 ? reg_conv::scratchInt0
                                 : reg_conv::scratchFp0;
                } else {
                    in.dst = t.phys;
                }
            }
        }

        res.body.push_back(in);

        if (dst_spilled) {
            isa::Instr st;
            st.op = op.dst.cls == RegClass::Int ? Op::St : Op::Fst;
            st.src1 = reg_conv::spillBase;
            st.src2 = in.dst;
            st.imm = slot_off(dst_slot);
            st.size = 8;
            res.body.push_back(st);
            ++res.spillStores;
        }
    }

    if (kernel.kind == LoopKind::Counted) {
        res.counter = pinned_phys.at(kernel.counter.id);
        res.limit = pinned_phys.at(kernel.limit.id);
    } else {
        res.cond = pinned_phys.at(kernel.cond.id);
    }
    res.spillSlots = next_slot - first_spill_slot;
    return res;
}

} // namespace nbl::compiler
