/**
 * @file
 * Fluent builder for kernels: the API workloads use to express their
 * loop bodies over virtual registers.
 */

#ifndef NBL_COMPILER_KERNEL_HH
#define NBL_COMPILER_KERNEL_HH

#include <cstdint>
#include <string>

#include "compiler/vir.hh"

namespace nbl::compiler
{

/**
 * Builds one Kernel. Preamble values (constants, array bases) are
 * pinned; body values are SSA temporaries. Type mismatches (e.g.
 * integer add of FP registers) panic at build time.
 */
class KernelBuilder
{
  public:
    /**
     * @param name Kernel name (diagnostics).
     * @param next_id In-out id counter shared across a program's
     *        kernels (KernelProgram::nextVRegId).
     */
    KernelBuilder(std::string name, uint32_t &next_id);

    // --- Preamble -------------------------------------------------
    /** Integer constant (array base address, bound, stride...). */
    VReg constI(int64_t value);
    /** FP constant (bit pattern via LImm into an FP register). */
    VReg constF(double value);

    // --- Loop shape ------------------------------------------------
    /** Counted loop: counter = start; trips iterations of step. */
    void countedLoop(int64_t start, int64_t trips, int64_t step = 1);
    /** The induction variable (countedLoop must have been called). */
    VReg counter() const;
    /**
     * While-loop: run the body until cond == 0. cond must be a pinned
     * register that the body redefines (e.g. the chased pointer).
     */
    void whileNonZero(VReg cond, uint64_t expected_trips);

    // --- Body: integer ---------------------------------------------
    VReg add(VReg a, VReg b);
    VReg sub(VReg a, VReg b);
    VReg mul(VReg a, VReg b);
    VReg and_(VReg a, VReg b);
    VReg or_(VReg a, VReg b);
    VReg xor_(VReg a, VReg b);
    VReg shl(VReg a, VReg b);
    VReg shr(VReg a, VReg b);
    VReg addi(VReg a, int64_t imm);
    VReg muli(VReg a, int64_t imm);
    VReg andi(VReg a, int64_t imm);
    VReg shli(VReg a, int64_t imm);
    VReg shri(VReg a, int64_t imm);
    VReg limm(int64_t value); ///< Constant materialized in the body.

    // --- Body: floating point --------------------------------------
    VReg fadd(VReg a, VReg b);
    VReg fsub(VReg a, VReg b);
    VReg fmul(VReg a, VReg b);
    VReg fdiv(VReg a, VReg b);

    // --- Body: memory ----------------------------------------------
    VReg load(VReg base, int64_t offset, int32_t space,
              unsigned size = 8);
    VReg fload(VReg base, int64_t offset, int32_t space,
               unsigned size = 8);
    void store(VReg base, int64_t offset, VReg value, int32_t space,
               unsigned size = 8);
    void fstore(VReg base, int64_t offset, VReg value, int32_t space,
                unsigned size = 8);

    // --- Body: loop-carried updates --------------------------------
    /** ptr += delta (redefinition of a pinned register). */
    void bump(VReg ptr, int64_t delta);
    /** dst = src (redefinition of a pinned register, e.g. chase). */
    void assign(VReg dst, VReg src);

    /** Finish and return the kernel. */
    Kernel take();

  private:
    VReg fresh(isa::RegClass cls);
    VReg bodyOp(isa::Op op, isa::RegClass cls, VReg a, VReg b,
                int64_t imm = 0);
    void requireCls(VReg r, isa::RegClass cls, const char *what) const;

    Kernel k_;
    uint32_t &next_id_;
    bool loop_defined_ = false;
};

} // namespace nbl::compiler

#endif // NBL_COMPILER_KERNEL_HH
