#include "compiler/list_scheduler.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "util/log.hh"

namespace nbl::compiler
{

std::vector<DepEdge>
buildDeps(const std::vector<VOp> &body, int load_latency)
{
    std::vector<DepEdge> edges;
    // Per-vreg def/use tracking.
    std::unordered_map<uint32_t, unsigned> last_def;
    std::unordered_map<uint32_t, std::vector<unsigned>> uses_since_def;
    // Per-space memory ordering.
    std::unordered_map<int32_t, unsigned> last_store;
    std::unordered_map<int32_t, std::vector<unsigned>> loads_since_store;

    auto raw_lat = [&](unsigned producer) {
        return body[producer].isLoad()
                   ? static_cast<unsigned>(load_latency)
                   : 1u;
    };

    for (unsigned i = 0; i < body.size(); ++i) {
        const VOp &op = body[i];

        auto use = [&](VReg v) {
            if (!v.valid())
                return;
            auto it = last_def.find(v.id);
            if (it != last_def.end()) {
                edges.push_back(
                    DepEdge{it->second, i, raw_lat(it->second),
                            DepKind::Raw});
            }
            uses_since_def[v.id].push_back(i);
        };

        unsigned ns = op.numSrcs();
        if (ns >= 1)
            use(op.src1);
        if (ns >= 2)
            use(op.src2);

        if (op.hasDst()) {
            uint32_t d = op.dst.id;
            auto it = last_def.find(d);
            if (it != last_def.end())
                edges.push_back(DepEdge{it->second, i, 1, DepKind::Waw});
            for (unsigned u : uses_since_def[d]) {
                if (u != i)
                    edges.push_back(DepEdge{u, i, 1, DepKind::War});
            }
            last_def[d] = i;
            uses_since_def[d].clear();
        }

        if (op.isMem() && op.space >= 0) {
            int32_t s = op.space;
            if (op.isLoad()) {
                auto it = last_store.find(s);
                if (it != last_store.end()) {
                    edges.push_back(
                        DepEdge{it->second, i, 1, DepKind::Mem});
                }
                loads_since_store[s].push_back(i);
            } else {
                auto it = last_store.find(s);
                if (it != last_store.end()) {
                    edges.push_back(
                        DepEdge{it->second, i, 1, DepKind::Mem});
                }
                for (unsigned u : loads_since_store[s])
                    edges.push_back(DepEdge{u, i, 1, DepKind::Mem});
                last_store[s] = i;
                loads_since_store[s].clear();
            }
        }
    }
    return edges;
}

std::vector<VOp>
scheduleBody(const std::vector<VOp> &body, int load_latency,
             bool aggressive_hoist)
{
    if (load_latency < 1)
        fatal("load latency must be >= 1");
    const unsigned n = static_cast<unsigned>(body.size());
    if (n == 0)
        return {};

    std::vector<DepEdge> edges = buildDeps(body, load_latency);
    std::vector<std::vector<std::pair<unsigned, unsigned>>> succs(n);
    std::vector<unsigned> indeg(n, 0);
    for (const DepEdge &e : edges) {
        succs[e.from].emplace_back(e.to, e.latency);
        ++indeg[e.to];
    }

    // Greedy in-order issue with lookahead: at each virtual slot, pick
    // the dependence-ready op that comes earliest in source order.
    // With load latency 1 this reproduces the source order (the
    // "schedule for hits" compiler of the paper); with larger assumed
    // latencies, later independent operations -- frequently loads --
    // are pulled forward into load shadows, which is exactly the
    // behaviour the paper attributes to its compiler (section 4).
    std::vector<uint64_t> ready(n, 0);
    std::vector<bool> avail(n, false);
    std::vector<bool> done(n, false);
    for (unsigned i = 0; i < n; ++i)
        avail[i] = indeg[i] == 0;

    // Vector-loop mode: loads sort as if they appeared boost slots
    // earlier, modeling a trace scheduler pipelining loads across the
    // whole unrolled body. boost = 0 keeps plain source order.
    const long boost = aggressive_hoist ? 3L * (load_latency - 1) : 0;
    auto sort_key = [&](unsigned i) {
        return long(i) - (body[i].isLoad() ? boost : 0);
    };

    std::vector<VOp> out;
    out.reserve(n);
    uint64_t t = 0;
    unsigned emitted = 0;
    while (emitted < n) {
        int pick = -1;
        uint64_t soonest = std::numeric_limits<uint64_t>::max();
        for (unsigned i = 0; i < n; ++i) {
            if (done[i] || !avail[i])
                continue;
            if (ready[i] <= t) {
                if (pick < 0 || sort_key(i) < sort_key(unsigned(pick)))
                    pick = int(i);
            } else {
                soonest = std::min(soonest, ready[i]);
            }
        }
        if (pick < 0) {
            // Nothing ready: let (virtual) time advance. No nops are
            // emitted; the gap just means the schedule could not fill
            // the latency.
            t = soonest;
            continue;
        }
        unsigned i = unsigned(pick);
        done[i] = true;
        avail[i] = false;
        out.push_back(body[i]);
        ++emitted;
        for (auto [s, lat] : succs[i]) {
            ready[s] = std::max(ready[s], t + lat);
            if (--indeg[s] == 0)
                avail[s] = true;
        }
        ++t;
    }
    return out;
}

} // namespace nbl::compiler
