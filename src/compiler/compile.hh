/**
 * @file
 * Compiler pipeline driver: schedule -> allocate -> lower.
 */

#ifndef NBL_COMPILER_COMPILE_HH
#define NBL_COMPILER_COMPILE_HH

#include "compiler/vir.hh"
#include "isa/program.hh"

namespace nbl::compiler
{

/** Knobs of one compilation. */
struct CompileParams
{
    /**
     * The assumed load latency L the schedule targets (paper section
     * 3.3). The timing simulator always charges 1 cycle on a hit; L
     * expresses how far the compiler separates loads from their uses.
     */
    int loadLatency = 1;
    /** Disable scheduling entirely (source order); for tests. */
    bool schedule = true;
};

/** Static code metrics of a compilation (for Figure 4 style tables). */
struct CompileInfo
{
    unsigned spillSlots = 0;
    unsigned spillLoads = 0;
    unsigned spillStores = 0;
};

/** Compile a kernel program; info (if non-null) gets code metrics. */
isa::Program compile(const KernelProgram &kp, const CompileParams &params,
                     CompileInfo *info = nullptr);

} // namespace nbl::compiler

#endif // NBL_COMPILER_COMPILE_HH
