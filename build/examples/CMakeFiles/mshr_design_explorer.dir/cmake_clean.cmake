file(REMOVE_RECURSE
  "CMakeFiles/mshr_design_explorer.dir/mshr_design_explorer.cpp.o"
  "CMakeFiles/mshr_design_explorer.dir/mshr_design_explorer.cpp.o.d"
  "mshr_design_explorer"
  "mshr_design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshr_design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
