# Empty compiler generated dependencies file for mshr_design_explorer.
# This may be replaced when dependencies are built.
