# Empty compiler generated dependencies file for compiler_scheduling.
# This may be replaced when dependencies are built.
