file(REMOVE_RECURSE
  "CMakeFiles/compiler_scheduling.dir/compiler_scheduling.cpp.o"
  "CMakeFiles/compiler_scheduling.dir/compiler_scheduling.cpp.o.d"
  "compiler_scheduling"
  "compiler_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
