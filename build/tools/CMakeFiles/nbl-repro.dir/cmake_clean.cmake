file(REMOVE_RECURSE
  "CMakeFiles/nbl-repro.dir/nbl_repro.cc.o"
  "CMakeFiles/nbl-repro.dir/nbl_repro.cc.o.d"
  "nbl-repro"
  "nbl-repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbl-repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
