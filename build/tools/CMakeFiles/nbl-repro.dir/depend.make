# Empty dependencies file for nbl-repro.
# This may be replaced when dependencies are built.
