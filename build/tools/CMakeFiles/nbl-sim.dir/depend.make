# Empty dependencies file for nbl-sim.
# This may be replaced when dependencies are built.
