file(REMOVE_RECURSE
  "CMakeFiles/nbl-sim.dir/nbl_sim.cc.o"
  "CMakeFiles/nbl-sim.dir/nbl_sim.cc.o.d"
  "nbl-sim"
  "nbl-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbl-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
