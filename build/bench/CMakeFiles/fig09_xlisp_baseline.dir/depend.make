# Empty dependencies file for fig09_xlisp_baseline.
# This may be replaced when dependencies are built.
