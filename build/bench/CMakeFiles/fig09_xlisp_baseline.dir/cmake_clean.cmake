file(REMOVE_RECURSE
  "CMakeFiles/fig09_xlisp_baseline.dir/fig09_xlisp_baseline.cc.o"
  "CMakeFiles/fig09_xlisp_baseline.dir/fig09_xlisp_baseline.cc.o.d"
  "fig09_xlisp_baseline"
  "fig09_xlisp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_xlisp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
