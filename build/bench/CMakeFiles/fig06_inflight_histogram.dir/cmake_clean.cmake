file(REMOVE_RECURSE
  "CMakeFiles/fig06_inflight_histogram.dir/fig06_inflight_histogram.cc.o"
  "CMakeFiles/fig06_inflight_histogram.dir/fig06_inflight_histogram.cc.o.d"
  "fig06_inflight_histogram"
  "fig06_inflight_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_inflight_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
