# Empty compiler generated dependencies file for fig06_inflight_histogram.
# This may be replaced when dependencies are built.
