# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17_doduc_16b_lines.
