# Empty compiler generated dependencies file for fig17_doduc_16b_lines.
# This may be replaced when dependencies are built.
