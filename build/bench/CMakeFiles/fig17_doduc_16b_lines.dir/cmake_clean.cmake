file(REMOVE_RECURSE
  "CMakeFiles/fig17_doduc_16b_lines.dir/fig17_doduc_16b_lines.cc.o"
  "CMakeFiles/fig17_doduc_16b_lines.dir/fig17_doduc_16b_lines.cc.o.d"
  "fig17_doduc_16b_lines"
  "fig17_doduc_16b_lines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_doduc_16b_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
