file(REMOVE_RECURSE
  "CMakeFiles/ablation_store_policy.dir/ablation_store_policy.cc.o"
  "CMakeFiles/ablation_store_policy.dir/ablation_store_policy.cc.o.d"
  "ablation_store_policy"
  "ablation_store_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_store_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
