# Empty dependencies file for ablation_store_policy.
# This may be replaced when dependencies are built.
