file(REMOVE_RECURSE
  "CMakeFiles/methodology_trace_vs_exec.dir/methodology_trace_vs_exec.cc.o"
  "CMakeFiles/methodology_trace_vs_exec.dir/methodology_trace_vs_exec.cc.o.d"
  "methodology_trace_vs_exec"
  "methodology_trace_vs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_trace_vs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
