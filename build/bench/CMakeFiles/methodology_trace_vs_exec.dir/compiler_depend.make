# Empty compiler generated dependencies file for methodology_trace_vs_exec.
# This may be replaced when dependencies are built.
