file(REMOVE_RECURSE
  "CMakeFiles/fig10_xlisp_fullassoc.dir/fig10_xlisp_fullassoc.cc.o"
  "CMakeFiles/fig10_xlisp_fullassoc.dir/fig10_xlisp_fullassoc.cc.o.d"
  "fig10_xlisp_fullassoc"
  "fig10_xlisp_fullassoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_xlisp_fullassoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
