# Empty dependencies file for fig10_xlisp_fullassoc.
# This may be replaced when dependencies are built.
