file(REMOVE_RECURSE
  "CMakeFiles/fig15_su2cor_per_set.dir/fig15_su2cor_per_set.cc.o"
  "CMakeFiles/fig15_su2cor_per_set.dir/fig15_su2cor_per_set.cc.o.d"
  "fig15_su2cor_per_set"
  "fig15_su2cor_per_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_su2cor_per_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
