# Empty compiler generated dependencies file for fig15_su2cor_per_set.
# This may be replaced when dependencies are built.
