file(REMOVE_RECURSE
  "CMakeFiles/fig11_eqntott_baseline.dir/fig11_eqntott_baseline.cc.o"
  "CMakeFiles/fig11_eqntott_baseline.dir/fig11_eqntott_baseline.cc.o.d"
  "fig11_eqntott_baseline"
  "fig11_eqntott_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_eqntott_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
