# Empty dependencies file for fig11_eqntott_baseline.
# This may be replaced when dependencies are built.
