file(REMOVE_RECURSE
  "CMakeFiles/fig16_doduc_64kb.dir/fig16_doduc_64kb.cc.o"
  "CMakeFiles/fig16_doduc_64kb.dir/fig16_doduc_64kb.cc.o.d"
  "fig16_doduc_64kb"
  "fig16_doduc_64kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_doduc_64kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
