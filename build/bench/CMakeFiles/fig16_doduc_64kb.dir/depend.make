# Empty dependencies file for fig16_doduc_64kb.
# This may be replaced when dependencies are built.
