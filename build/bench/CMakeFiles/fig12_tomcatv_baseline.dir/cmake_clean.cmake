file(REMOVE_RECURSE
  "CMakeFiles/fig12_tomcatv_baseline.dir/fig12_tomcatv_baseline.cc.o"
  "CMakeFiles/fig12_tomcatv_baseline.dir/fig12_tomcatv_baseline.cc.o.d"
  "fig12_tomcatv_baseline"
  "fig12_tomcatv_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tomcatv_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
