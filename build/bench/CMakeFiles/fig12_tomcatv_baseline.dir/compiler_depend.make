# Empty compiler generated dependencies file for fig12_tomcatv_baseline.
# This may be replaced when dependencies are built.
