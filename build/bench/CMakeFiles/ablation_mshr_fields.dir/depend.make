# Empty dependencies file for ablation_mshr_fields.
# This may be replaced when dependencies are built.
