file(REMOVE_RECURSE
  "CMakeFiles/ablation_mshr_fields.dir/ablation_mshr_fields.cc.o"
  "CMakeFiles/ablation_mshr_fields.dir/ablation_mshr_fields.cc.o.d"
  "ablation_mshr_fields"
  "ablation_mshr_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mshr_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
