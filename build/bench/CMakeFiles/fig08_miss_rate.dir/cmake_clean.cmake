file(REMOVE_RECURSE
  "CMakeFiles/fig08_miss_rate.dir/fig08_miss_rate.cc.o"
  "CMakeFiles/fig08_miss_rate.dir/fig08_miss_rate.cc.o.d"
  "fig08_miss_rate"
  "fig08_miss_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_miss_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
