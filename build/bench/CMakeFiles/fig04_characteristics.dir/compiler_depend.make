# Empty compiler generated dependencies file for fig04_characteristics.
# This may be replaced when dependencies are built.
