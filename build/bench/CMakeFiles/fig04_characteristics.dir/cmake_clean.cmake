file(REMOVE_RECURSE
  "CMakeFiles/fig04_characteristics.dir/fig04_characteristics.cc.o"
  "CMakeFiles/fig04_characteristics.dir/fig04_characteristics.cc.o.d"
  "fig04_characteristics"
  "fig04_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
