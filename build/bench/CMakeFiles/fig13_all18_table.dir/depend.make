# Empty dependencies file for fig13_all18_table.
# This may be replaced when dependencies are built.
