# Empty compiler generated dependencies file for fig19_dual_issue_scaling.
# This may be replaced when dependencies are built.
