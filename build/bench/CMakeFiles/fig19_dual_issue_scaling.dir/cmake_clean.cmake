file(REMOVE_RECURSE
  "CMakeFiles/fig19_dual_issue_scaling.dir/fig19_dual_issue_scaling.cc.o"
  "CMakeFiles/fig19_dual_issue_scaling.dir/fig19_dual_issue_scaling.cc.o.d"
  "fig19_dual_issue_scaling"
  "fig19_dual_issue_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_dual_issue_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
