# Empty dependencies file for ablation_fill_ports.
# This may be replaced when dependencies are built.
