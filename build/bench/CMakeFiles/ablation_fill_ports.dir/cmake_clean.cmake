file(REMOVE_RECURSE
  "CMakeFiles/ablation_fill_ports.dir/ablation_fill_ports.cc.o"
  "CMakeFiles/ablation_fill_ports.dir/ablation_fill_ports.cc.o.d"
  "ablation_fill_ports"
  "ablation_fill_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fill_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
