# Empty dependencies file for fig14_mshr_organizations.
# This may be replaced when dependencies are built.
