file(REMOVE_RECURSE
  "CMakeFiles/fig14_mshr_organizations.dir/fig14_mshr_organizations.cc.o"
  "CMakeFiles/fig14_mshr_organizations.dir/fig14_mshr_organizations.cc.o.d"
  "fig14_mshr_organizations"
  "fig14_mshr_organizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mshr_organizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
