# Empty compiler generated dependencies file for fig18_miss_penalty.
# This may be replaced when dependencies are built.
