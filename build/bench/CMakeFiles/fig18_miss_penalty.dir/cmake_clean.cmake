file(REMOVE_RECURSE
  "CMakeFiles/fig18_miss_penalty.dir/fig18_miss_penalty.cc.o"
  "CMakeFiles/fig18_miss_penalty.dir/fig18_miss_penalty.cc.o.d"
  "fig18_miss_penalty"
  "fig18_miss_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_miss_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
