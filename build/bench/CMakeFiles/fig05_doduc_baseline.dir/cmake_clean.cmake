file(REMOVE_RECURSE
  "CMakeFiles/fig05_doduc_baseline.dir/fig05_doduc_baseline.cc.o"
  "CMakeFiles/fig05_doduc_baseline.dir/fig05_doduc_baseline.cc.o.d"
  "fig05_doduc_baseline"
  "fig05_doduc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_doduc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
