# Empty dependencies file for fig05_doduc_baseline.
# This may be replaced when dependencies are built.
