# Empty compiler generated dependencies file for test_inverted_mshr.
# This may be replaced when dependencies are built.
