file(REMOVE_RECURSE
  "CMakeFiles/test_inverted_mshr.dir/test_inverted_mshr.cc.o"
  "CMakeFiles/test_inverted_mshr.dir/test_inverted_mshr.cc.o.d"
  "test_inverted_mshr"
  "test_inverted_mshr.pdb"
  "test_inverted_mshr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inverted_mshr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
