file(REMOVE_RECURSE
  "CMakeFiles/test_cache_fuzz.dir/test_cache_fuzz.cc.o"
  "CMakeFiles/test_cache_fuzz.dir/test_cache_fuzz.cc.o.d"
  "test_cache_fuzz"
  "test_cache_fuzz.pdb"
  "test_cache_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
