# Empty compiler generated dependencies file for test_cache_fuzz.
# This may be replaced when dependencies are built.
