file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_memory.dir/test_sparse_memory.cc.o"
  "CMakeFiles/test_sparse_memory.dir/test_sparse_memory.cc.o.d"
  "test_sparse_memory"
  "test_sparse_memory.pdb"
  "test_sparse_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
