# Empty dependencies file for test_flight_tracker.
# This may be replaced when dependencies are built.
