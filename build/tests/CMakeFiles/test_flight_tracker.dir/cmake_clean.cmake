file(REMOVE_RECURSE
  "CMakeFiles/test_flight_tracker.dir/test_flight_tracker.cc.o"
  "CMakeFiles/test_flight_tracker.dir/test_flight_tracker.cc.o.d"
  "test_flight_tracker"
  "test_flight_tracker.pdb"
  "test_flight_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flight_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
