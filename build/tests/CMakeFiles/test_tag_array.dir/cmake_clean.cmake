file(REMOVE_RECURSE
  "CMakeFiles/test_tag_array.dir/test_tag_array.cc.o"
  "CMakeFiles/test_tag_array.dir/test_tag_array.cc.o.d"
  "test_tag_array"
  "test_tag_array.pdb"
  "test_tag_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
