# Empty compiler generated dependencies file for test_tag_array.
# This may be replaced when dependencies are built.
