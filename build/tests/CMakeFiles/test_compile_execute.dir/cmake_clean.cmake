file(REMOVE_RECURSE
  "CMakeFiles/test_compile_execute.dir/test_compile_execute.cc.o"
  "CMakeFiles/test_compile_execute.dir/test_compile_execute.cc.o.d"
  "test_compile_execute"
  "test_compile_execute.pdb"
  "test_compile_execute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compile_execute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
