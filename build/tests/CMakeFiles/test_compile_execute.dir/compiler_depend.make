# Empty compiler generated dependencies file for test_compile_execute.
# This may be replaced when dependencies are built.
