# Empty compiler generated dependencies file for test_nonblocking_cache.
# This may be replaced when dependencies are built.
