file(REMOVE_RECURSE
  "CMakeFiles/test_nonblocking_cache.dir/test_nonblocking_cache.cc.o"
  "CMakeFiles/test_nonblocking_cache.dir/test_nonblocking_cache.cc.o.d"
  "test_nonblocking_cache"
  "test_nonblocking_cache.pdb"
  "test_nonblocking_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonblocking_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
