file(REMOVE_RECURSE
  "CMakeFiles/test_mshr_file.dir/test_mshr_file.cc.o"
  "CMakeFiles/test_mshr_file.dir/test_mshr_file.cc.o.d"
  "test_mshr_file"
  "test_mshr_file.pdb"
  "test_mshr_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mshr_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
