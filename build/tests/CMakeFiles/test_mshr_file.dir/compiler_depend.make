# Empty compiler generated dependencies file for test_mshr_file.
# This may be replaced when dependencies are built.
