file(REMOVE_RECURSE
  "CMakeFiles/test_mshr_cost.dir/test_mshr_cost.cc.o"
  "CMakeFiles/test_mshr_cost.dir/test_mshr_cost.cc.o.d"
  "test_mshr_cost"
  "test_mshr_cost.pdb"
  "test_mshr_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mshr_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
