# Empty compiler generated dependencies file for test_mshr_cost.
# This may be replaced when dependencies are built.
