file(REMOVE_RECURSE
  "CMakeFiles/test_chart_csv.dir/test_chart_csv.cc.o"
  "CMakeFiles/test_chart_csv.dir/test_chart_csv.cc.o.d"
  "test_chart_csv"
  "test_chart_csv.pdb"
  "test_chart_csv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chart_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
