
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/compile.cc" "src/CMakeFiles/nbl.dir/compiler/compile.cc.o" "gcc" "src/CMakeFiles/nbl.dir/compiler/compile.cc.o.d"
  "/root/repo/src/compiler/kernel.cc" "src/CMakeFiles/nbl.dir/compiler/kernel.cc.o" "gcc" "src/CMakeFiles/nbl.dir/compiler/kernel.cc.o.d"
  "/root/repo/src/compiler/list_scheduler.cc" "src/CMakeFiles/nbl.dir/compiler/list_scheduler.cc.o" "gcc" "src/CMakeFiles/nbl.dir/compiler/list_scheduler.cc.o.d"
  "/root/repo/src/compiler/lower.cc" "src/CMakeFiles/nbl.dir/compiler/lower.cc.o" "gcc" "src/CMakeFiles/nbl.dir/compiler/lower.cc.o.d"
  "/root/repo/src/compiler/regalloc.cc" "src/CMakeFiles/nbl.dir/compiler/regalloc.cc.o" "gcc" "src/CMakeFiles/nbl.dir/compiler/regalloc.cc.o.d"
  "/root/repo/src/compiler/unroller.cc" "src/CMakeFiles/nbl.dir/compiler/unroller.cc.o" "gcc" "src/CMakeFiles/nbl.dir/compiler/unroller.cc.o.d"
  "/root/repo/src/compiler/vir.cc" "src/CMakeFiles/nbl.dir/compiler/vir.cc.o" "gcc" "src/CMakeFiles/nbl.dir/compiler/vir.cc.o.d"
  "/root/repo/src/core/flight_tracker.cc" "src/CMakeFiles/nbl.dir/core/flight_tracker.cc.o" "gcc" "src/CMakeFiles/nbl.dir/core/flight_tracker.cc.o.d"
  "/root/repo/src/core/inverted_mshr.cc" "src/CMakeFiles/nbl.dir/core/inverted_mshr.cc.o" "gcc" "src/CMakeFiles/nbl.dir/core/inverted_mshr.cc.o.d"
  "/root/repo/src/core/mshr.cc" "src/CMakeFiles/nbl.dir/core/mshr.cc.o" "gcc" "src/CMakeFiles/nbl.dir/core/mshr.cc.o.d"
  "/root/repo/src/core/mshr_cost.cc" "src/CMakeFiles/nbl.dir/core/mshr_cost.cc.o" "gcc" "src/CMakeFiles/nbl.dir/core/mshr_cost.cc.o.d"
  "/root/repo/src/core/mshr_file.cc" "src/CMakeFiles/nbl.dir/core/mshr_file.cc.o" "gcc" "src/CMakeFiles/nbl.dir/core/mshr_file.cc.o.d"
  "/root/repo/src/core/nonblocking_cache.cc" "src/CMakeFiles/nbl.dir/core/nonblocking_cache.cc.o" "gcc" "src/CMakeFiles/nbl.dir/core/nonblocking_cache.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/nbl.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/nbl.dir/core/policy.cc.o.d"
  "/root/repo/src/cpu/cpu.cc" "src/CMakeFiles/nbl.dir/cpu/cpu.cc.o" "gcc" "src/CMakeFiles/nbl.dir/cpu/cpu.cc.o.d"
  "/root/repo/src/cpu/scoreboard.cc" "src/CMakeFiles/nbl.dir/cpu/scoreboard.cc.o" "gcc" "src/CMakeFiles/nbl.dir/cpu/scoreboard.cc.o.d"
  "/root/repo/src/cpu/stats.cc" "src/CMakeFiles/nbl.dir/cpu/stats.cc.o" "gcc" "src/CMakeFiles/nbl.dir/cpu/stats.cc.o.d"
  "/root/repo/src/exec/interpreter.cc" "src/CMakeFiles/nbl.dir/exec/interpreter.cc.o" "gcc" "src/CMakeFiles/nbl.dir/exec/interpreter.cc.o.d"
  "/root/repo/src/exec/machine.cc" "src/CMakeFiles/nbl.dir/exec/machine.cc.o" "gcc" "src/CMakeFiles/nbl.dir/exec/machine.cc.o.d"
  "/root/repo/src/exec/trace.cc" "src/CMakeFiles/nbl.dir/exec/trace.cc.o" "gcc" "src/CMakeFiles/nbl.dir/exec/trace.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/nbl.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/nbl.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/paper_data.cc" "src/CMakeFiles/nbl.dir/harness/paper_data.cc.o" "gcc" "src/CMakeFiles/nbl.dir/harness/paper_data.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/nbl.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/nbl.dir/harness/report.cc.o.d"
  "/root/repo/src/harness/sweep.cc" "src/CMakeFiles/nbl.dir/harness/sweep.cc.o" "gcc" "src/CMakeFiles/nbl.dir/harness/sweep.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/nbl.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/nbl.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/cache_geometry.cc" "src/CMakeFiles/nbl.dir/mem/cache_geometry.cc.o" "gcc" "src/CMakeFiles/nbl.dir/mem/cache_geometry.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/nbl.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/nbl.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/mem/sparse_memory.cc" "src/CMakeFiles/nbl.dir/mem/sparse_memory.cc.o" "gcc" "src/CMakeFiles/nbl.dir/mem/sparse_memory.cc.o.d"
  "/root/repo/src/mem/tag_array.cc" "src/CMakeFiles/nbl.dir/mem/tag_array.cc.o" "gcc" "src/CMakeFiles/nbl.dir/mem/tag_array.cc.o.d"
  "/root/repo/src/mem/write_buffer.cc" "src/CMakeFiles/nbl.dir/mem/write_buffer.cc.o" "gcc" "src/CMakeFiles/nbl.dir/mem/write_buffer.cc.o.d"
  "/root/repo/src/util/chart.cc" "src/CMakeFiles/nbl.dir/util/chart.cc.o" "gcc" "src/CMakeFiles/nbl.dir/util/chart.cc.o.d"
  "/root/repo/src/util/log.cc" "src/CMakeFiles/nbl.dir/util/log.cc.o" "gcc" "src/CMakeFiles/nbl.dir/util/log.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/nbl.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/nbl.dir/util/rng.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/nbl.dir/util/table.cc.o" "gcc" "src/CMakeFiles/nbl.dir/util/table.cc.o.d"
  "/root/repo/src/workloads/archetypes.cc" "src/CMakeFiles/nbl.dir/workloads/archetypes.cc.o" "gcc" "src/CMakeFiles/nbl.dir/workloads/archetypes.cc.o.d"
  "/root/repo/src/workloads/spec_fp_a.cc" "src/CMakeFiles/nbl.dir/workloads/spec_fp_a.cc.o" "gcc" "src/CMakeFiles/nbl.dir/workloads/spec_fp_a.cc.o.d"
  "/root/repo/src/workloads/spec_fp_b.cc" "src/CMakeFiles/nbl.dir/workloads/spec_fp_b.cc.o" "gcc" "src/CMakeFiles/nbl.dir/workloads/spec_fp_b.cc.o.d"
  "/root/repo/src/workloads/spec_fp_c.cc" "src/CMakeFiles/nbl.dir/workloads/spec_fp_c.cc.o" "gcc" "src/CMakeFiles/nbl.dir/workloads/spec_fp_c.cc.o.d"
  "/root/repo/src/workloads/spec_int.cc" "src/CMakeFiles/nbl.dir/workloads/spec_int.cc.o" "gcc" "src/CMakeFiles/nbl.dir/workloads/spec_int.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/nbl.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/nbl.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
