# Empty compiler generated dependencies file for nbl.
# This may be replaced when dependencies are built.
