file(REMOVE_RECURSE
  "libnbl.a"
)
