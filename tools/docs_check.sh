#!/bin/sh
# Docs-drift gate: the documentation must gate on reality.
#
#     tools/docs_check.sh [build-dir]
#
# Two checks, both mechanical:
#
# 1. Knob completeness. Every NBL_* environment variable the sources
#    read through util/env (envFlag/envInt/envDouble/envString) must
#    have a row in the canonical knob table in docs/PERF.md. Adding a
#    knob without documenting it fails this gate.
#
# 2. CLI invocations parse. Every code-fenced invocation of
#    nbl-sim / nbl-client / nbl-labd in README.md and docs/*.md
#    (recognized by the `tools/nbl-...` path inside a ``` fence) is
#    re-run with --dry-run appended: the binary must accept the
#    documented arguments. A doc example that drifts from the real
#    flag vocabulary fails this gate.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"
build="${1:-build}"

fail=0

echo "-- docs gate: knobs read by the code are in docs/PERF.md --"
read_knobs="$(grep -rhoE 'env(Flag|Int|Double|String)\("NBL_[A-Z_0-9]+"' \
    src tools bench examples 2>/dev/null |
    grep -oE 'NBL_[A-Z_0-9]+' | sort -u)"
# Rows of the canonical table look like: | `NBL_FOO` | ... |
table_knobs="$(grep -oE '^\| `NBL_[A-Z_0-9]+`' docs/PERF.md |
    grep -oE 'NBL_[A-Z_0-9]+' | sort -u)"
for knob in $read_knobs; do
    if ! printf '%s\n' "$table_knobs" | grep -qx "$knob"; then
        echo "MISSING: $knob is read by the code but has no row in" \
             "the canonical knob table (docs/PERF.md)" >&2
        fail=1
    fi
done
echo "   $(printf '%s\n' "$read_knobs" | wc -l) knobs read," \
     "$(printf '%s\n' "$table_knobs" | wc -l) documented"

echo "-- docs gate: fenced CLI examples parse (--dry-run) --"
checked=0
for doc in README.md docs/*.md; do
    # Extract fenced lines mentioning tools/nbl-*: awk toggles fence
    # state on ``` lines; sed trims everything before the tool name
    # and everything from the first redirection/pipe/background/
    # comment/command-separator onward.
    awk '/^[[:space:]]*```/ { fence = !fence; next }
         fence && /tools\/nbl-(sim|client|labd)/ { print }' "$doc" |
    sed -e 's/.*tools\/\(nbl-[a-z]*\)/\1/' \
        -e 's/[>|&;#].*//' |
    while read -r cmd; do
        tool="${cmd%% *}"
        if [ ! -x "$build/tools/$tool" ]; then
            echo "MISSING BINARY: $build/tools/$tool (from $doc)" >&2
            exit 9
        fi
        if ! "$build/tools/$tool" ${cmd#"$tool"} --dry-run \
                >/dev/null 2>&1; then
            echo "STALE EXAMPLE in $doc: '$cmd' does not parse" \
                 "(ran: $tool ... --dry-run)" >&2
            exit 9
        fi
        echo "   ok: $cmd"
    done || fail=1
    checked=$((checked + 1))
done
echo "   $checked documents scanned"

if [ "$fail" != "0" ]; then
    echo "docs_check.sh: FAILED -- docs drifted from the code" >&2
    exit 1
fi
echo "docs_check.sh: docs match reality"
