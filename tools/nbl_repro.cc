/**
 * @file
 * nbl-repro: regenerate the paper-vs-measured comparison as markdown.
 *
 * Runs the core quantitative comparisons (Figure 13's 18-benchmark
 * table, Figure 14's field-organization grid, Figure 18's penalty
 * sweep) and emits a markdown report with measured values beside the
 * paper's, plus pass/fail against the shape criteria of DESIGN.md
 * section 4. This is the automated backbone of EXPERIMENTS.md.
 *
 *   nbl-repro [scale] > report.md
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/paper_data.hh"
#include "harness/sweep.hh"
#include "util/log.hh"

using namespace nbl;

namespace
{

int checks_run = 0;
int checks_passed = 0;

void
check(bool ok, const char *what)
{
    ++checks_run;
    checks_passed += ok;
    std::printf("- %s %s\n", ok ? "PASS" : "FAIL", what);
}

void
fig13(harness::Lab &lab)
{
    std::printf("## Figure 13: 18 benchmarks, latency 10\n\n");
    std::printf("| benchmark | mc0 | mc1 | mc2 | fc1 | fc2 | inf | "
                "paper mc0..inf |\n");
    std::printf("|---|---|---|---|---|---|---|---|\n");

    double worst_int_ratio = 0.0;
    double best_vec_ratio = 1e9;
    bool ordering_ok = true;
    double doduc_mc2 = 0, doduc_fc1 = 0;

    for (const auto &p : harness::paper::fig13()) {
        double m[6];
        int i = 0;
        for (auto cfg : {core::ConfigName::Mc0, core::ConfigName::Mc1,
                         core::ConfigName::Mc2, core::ConfigName::Fc1,
                         core::ConfigName::Fc2,
                         core::ConfigName::NoRestrict}) {
            harness::ExperimentConfig e;
            e.config = cfg;
            e.loadLatency = 10;
            m[i++] = lab.run(p.name, e).mcpi();
        }
        std::printf("| %s | %.3f | %.3f | %.3f | %.3f | %.3f | %.3f "
                    "| %.3f..%.3f |\n",
                    p.name, m[0], m[1], m[2], m[3], m[4], m[5], p.mc0,
                    p.unrestricted);

        ordering_ok &= m[0] >= m[1] - 1e-9 && m[1] >= m[2] - 1e-9 &&
                       m[1] >= m[3] - 1e-9 && m[3] >= m[4] - 1e-9 &&
                       m[4] >= m[5] - 1e-9;
        std::string name = p.name;
        if (name == "compress" || name == "eqntott" ||
            name == "espresso" || name == "xlisp") {
            worst_int_ratio =
                std::max(worst_int_ratio, m[1] / m[5]);
        }
        if (name == "tomcatv" || name == "su2cor")
            best_vec_ratio = std::min(best_vec_ratio, m[1] / m[5]);
        if (name == "doduc") {
            doduc_mc2 = m[2];
            doduc_fc1 = m[3];
        }
    }
    std::printf("\n");
    check(ordering_ok, "capability ordering holds on every row");
    check(worst_int_ratio < 1.25,
          "integer codes: mc=1 within 25% of unrestricted");
    check(best_vec_ratio > 3.0,
          "vector codes: mc=1 at least 3x unrestricted");
    check(doduc_mc2 < doduc_fc1,
          "doduc: two primary misses beat unlimited secondaries");
    std::printf("\n");
}

void
fig14(harness::Lab &lab)
{
    std::printf("## Figure 14: MSHR field organizations (doduc)\n\n");
    std::printf("| sb | mps | measured | paper |\n|---|---|---|---|\n");
    harness::ExperimentConfig base;
    base.loadLatency = 10;
    double single = 0, four = 0;
    for (const auto &cell : harness::paper::fig14()) {
        if (cell.subBlocks < 0)
            continue;
        harness::ExperimentConfig e = base;
        e.customPolicy =
            core::makeFieldPolicy(cell.subBlocks, cell.missesPerSub);
        double m = lab.run("doduc", e).mcpi();
        std::printf("| %d | %d | %.3f | %.3f |\n", cell.subBlocks,
                    cell.missesPerSub, m, cell.mcpi);
        if (cell.subBlocks == 1 && cell.missesPerSub == 1)
            single = m;
        if (cell.subBlocks == 1 && cell.missesPerSub == 4)
            four = m;
    }
    std::printf("\n");
    check(four < single, "adding destination fields always helps");
    base.config = core::ConfigName::NoRestrict;
    double inf = lab.run("doduc", base).mcpi();
    check(four <= 1.10 * inf,
          "4 explicit fields within 10% of unrestricted");
    std::printf("\n");
}

void
fig18(harness::Lab &lab)
{
    std::printf("## Figure 18: tomcatv MCPI vs miss penalty\n\n");
    std::printf("| config | 4 | 8 | 16 | 32 | 64 | 128 |\n");
    std::printf("|---|---|---|---|---|---|---|\n");
    double mc0[6], inf[6];
    int col;
    for (auto cfg : {core::ConfigName::Mc0,
                     core::ConfigName::NoRestrict}) {
        std::printf("| %s |", core::configLabel(cfg));
        col = 0;
        for (unsigned pen : harness::paper::fig18Penalties) {
            harness::ExperimentConfig e;
            e.config = cfg;
            e.loadLatency = 10;
            e.missPenalty = pen;
            double m = lab.run("tomcatv", e).mcpi();
            (cfg == core::ConfigName::Mc0 ? mc0 : inf)[col++] = m;
            std::printf(" %.3f |", m);
        }
        std::printf("\n");
    }
    std::printf("\n");
    bool linear = true;
    for (int i = 1; i < 6; ++i)
        linear &= std::abs(mc0[i] / mc0[i - 1] - 2.0) < 1e-6;
    check(linear, "blocking MCPI exactly linear in the penalty");
    check(inf[3] > 4.0 * inf[2],
          "unrestricted MCPI super-linear (16 -> 32 grows > 4x)");
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    if (scale <= 0)
        fatal("usage: nbl-repro [scale]");
    harness::Lab lab(scale);

    std::printf("# Reproduction report\n\n"
                "Workload scale %.2f; baseline: 8KB direct-mapped, "
                "32B lines, 16-cycle miss penalty, load latency 10.\n"
                "Shape criteria from DESIGN.md section 4.\n\n",
                scale);
    fig13(lab);
    fig14(lab);
    fig18(lab);

    std::printf("## Verdict\n\n%d/%d shape criteria passed.\n",
                checks_passed, checks_run);
    return checks_passed == checks_run ? 0 : 1;
}
