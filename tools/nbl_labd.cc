/**
 * @file
 * nbl-labd: the sweep-as-a-service daemon (docs/SERVICE.md).
 *
 * Serves experiment points over a length-prefixed JSON protocol on a
 * unix-domain socket (optionally also loopback TCP). One shared
 * harness::Lab memoizes everything in memory; a content-addressed
 * on-disk store (--cache-dir / NBL_LABD_CACHE_DIR) makes results and
 * recorded event traces survive restarts.
 *
 *   nbl-labd --socket /tmp/nbl.sock --cache-dir ~/.cache/nbl
 *   nbl-labd --socket /tmp/nbl.sock --tcp 0    # + ephemeral TCP port
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.hh"
#include "service/cache_store.hh"
#include "service/server.hh"
#include "service/service.hh"
#include "util/env.hh"
#include "util/log.hh"

using namespace nbl;

namespace
{

struct Options
{
    std::string socketPath;
    std::string cacheDir;
    bool tcp = false;
    uint16_t tcpPort = 0;
    double scale = 1.0;
    bool dryRun = false;
};

[[noreturn]] void
usage()
{
    std::printf(
        "nbl-labd: sweep-as-a-service daemon\n"
        "\n"
        "  --socket PATH     unix socket to listen on\n"
        "                    (default $NBL_LABD_SOCKET or "
        "/tmp/nbl-labd.sock)\n"
        "  --cache-dir DIR   persistent result/trace store\n"
        "                    (default $NBL_LABD_CACHE_DIR; empty = "
        "in-memory only)\n"
        "  --tcp PORT        also listen on 127.0.0.1:PORT "
        "(0 = ephemeral,\n"
        "                    bound port printed on startup)\n"
        "  --scale F         workload size multiplier (1.0)\n"
        "  --dry-run         validate arguments and exit (docs smoke "
        "checks)\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    o.socketPath = envString("NBL_LABD_SOCKET", "/tmp/nbl-labd.sock");
    o.cacheDir = envString("NBL_LABD_CACHE_DIR");
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--socket")
            o.socketPath = need(i);
        else if (a == "--cache-dir")
            o.cacheDir = need(i);
        else if (a == "--tcp") {
            o.tcp = true;
            o.tcpPort = uint16_t(std::atoi(need(i)));
        } else if (a == "--scale")
            o.scale = std::atof(need(i));
        else if (a == "--dry-run")
            o.dryRun = true;
        else
            usage();
    }
    return o;
}

service::SocketServer *gServer = nullptr;

void
onSignal(int)
{
    if (gServer)
        gServer->stop();
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    if (o.dryRun)
        return 0;

    // A client hanging up mid-response must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    harness::Lab lab(o.scale);
    service::CacheStore store =
        o.cacheDir.empty() ? service::CacheStore()
                           : service::CacheStore(o.cacheDir);
    service::LabService svc(lab, store);
    service::SocketServer server(
        svc, {o.socketPath, o.tcp, o.tcpPort});

    std::string err;
    if (!server.start(&err))
        fatal("nbl-labd: %s", err.c_str());

    gServer = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::printf("nbl-labd: listening on %s\n", o.socketPath.c_str());
    if (o.tcp)
        std::printf("nbl-labd: tcp port %u\n",
                    unsigned(server.tcpPort()));
    if (store.enabled())
        std::printf("nbl-labd: cache dir %s\n", store.dir().c_str());
    std::fflush(stdout);

    server.wait();
    gServer = nullptr;
    std::printf("nbl-labd: stopped\n");
    return 0;
}
