#!/bin/sh
# Tier-1 verification plus a ThreadSanitizer pass over the parallel
# engine. Run from the repository root:
#
#     tools/check.sh [jobs]
#
# Step 1 is the ROADMAP tier-1 gate (full build + ctest). Step 2
# rebuilds with -DNBL_SANITIZE=thread into build-tsan/ and runs the
# parallel-engine, harness, trace-cache, and concurrent-lane-batch
# tests under TSan, which exercises the thread pool, the shared Lab
# caches (results and event traces), and the sweep fan-out. Step 3
# rebuilds with -DNBL_SANITIZE=address,undefined into build-asan/ and
# runs the differential fuzzer (docs/TESTING.md) under ASan+UBSan for
# NBL_FUZZ_BUDGET seconds (default 60; 0 skips the step); every seed
# crosses lane-batched replay against exec (exec-vs-lane), so the
# lane-vs-exact differential runs sanitized here. Step 4 is the
# observability gate: nbl-report checks the committed data/stats
# artifacts against the generated EXPERIMENTS.md tables (the
# artifacts are full-scale and committed, so this needs no
# simulation), and a quick smoke run proves the stats emitter never
# alters a bench binary's stdout. Step 5 asserts every figure bench
# prints byte-identical stdout whether lane batching is on or off
# (NBL_LANE_REPLAY=1 vs =0 at NBL_SCALE=0.05). Step 6 is the model
# gate: fig21_model_prune cross-checks the predict-then-simulate
# planner against a full sweep (exit 1 on any bound violation or
# back-substitution mismatch), and a figure bench must print
# byte-identical stdout with NBL_MODEL_PRUNE=0 vs unset -- pruning is
# strictly opt-in, so figure output never silently changes. Step 7 is
# the docs-drift gate (tools/docs_check.sh): every NBL_* knob the
# code reads must be in docs/PERF.md's canonical table, and every
# fenced nbl-sim/nbl-client/nbl-labd example in the docs must parse.
# Step 8 is the service gate: a real nbl-labd on a temp socket
# answers the doduc fig05 sweep twice (cold, then warm from its
# cache) with nbl-client --verify re-simulating every point locally
# and requiring bit-identical counters; the TSan step also runs the
# daemon request path (tests/test_daemon.cc Service*/SocketServer*).
# Step 9 is the policy gate: smoke runs of fig22 (level prediction)
# and fig23 (prefetch pressure) must print no VIOLATED check line,
# and a figure bench must print byte-identical stdout with every
# NBL_PRED_*/NBL_PF_*/NBL_SSR_* knob explicitly set to its default
# vs all of them unset -- the stall-reduction policies are strictly
# opt-in. The fuzzer already covers policy configs: its generator
# randomizes predictor/prefetch/SSR knobs per seed, so the sanitized
# fuzz in step 3 exercises the policy paths across all four engines
# (no NBL_* policy env is set there; env overrides would skew the
# Lab cross).
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== tsan: parallel engine =="
cmake -B build-tsan -S . -DNBL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs" \
    --target test_parallel test_harness test_event_trace \
    test_lane_replay test_daemon
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_parallel
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_harness
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/test_event_trace --gtest_filter='TraceCache*'
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/test_lane_replay \
    --gtest_filter='LaneReplayConcurrency*'

echo "== tsan: daemon request path =="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_daemon \
    --gtest_filter='Service*:SocketServer*'

fuzz_budget="${NBL_FUZZ_BUDGET:-60}"
if [ "$fuzz_budget" != "0" ]; then
    echo "== asan+ubsan: differential fuzz (${fuzz_budget}s) =="
    cmake -B build-asan -S . -DNBL_SANITIZE=address,undefined >/dev/null
    cmake --build build-asan -j "$jobs" --target nbl-fuzz
    ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
        NBL_LANE_REPLAY=1 ./build-asan/tools/nbl-fuzz --seeds=100000 \
        --budget="$fuzz_budget"
fi

echo "== observability: EXPERIMENTS.md drift gate =="
./build/tools/nbl-report --check

echo "== observability: stats export leaves stdout untouched =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
NBL_SCALE=0.05 ./build/bench/fig06_inflight_histogram > "$tmp/plain.txt"
NBL_SCALE=0.05 ./build/bench/fig06_inflight_histogram \
    --json="$tmp/out.json" --csv="$tmp/out.csv" > "$tmp/export.txt"
diff "$tmp/plain.txt" "$tmp/export.txt"
test -s "$tmp/out.json"
test -s "$tmp/out.csv"

echo "== lane replay: figure bench stdout byte-identical =="
for b in ./build/bench/fig*; do
    name="$(basename "$b")"
    NBL_SCALE=0.05 NBL_LANE_REPLAY=0 "$b" > "$tmp/$name.exact.txt"
    NBL_SCALE=0.05 NBL_LANE_REPLAY=1 "$b" > "$tmp/$name.lane.txt"
    diff "$tmp/$name.exact.txt" "$tmp/$name.lane.txt"
done

echo "== model: planner bound/back-substitution gate =="
NBL_SCALE=0.05 ./build/bench/fig21_model_prune > /dev/null

echo "== model: figure stdout identical with pruning off =="
NBL_SCALE=0.05 NBL_MODEL_PRUNE=0 ./build/bench/fig05_doduc_baseline \
    > "$tmp/fig05.off.txt"
NBL_SCALE=0.05 ./build/bench/fig05_doduc_baseline \
    > "$tmp/fig05.unset.txt"
diff "$tmp/fig05.off.txt" "$tmp/fig05.unset.txt"

echo "== policy: fig22/fig23 check lines hold =="
NBL_SCALE=0.05 ./build/bench/fig22_level_prediction > "$tmp/fig22.txt"
NBL_SCALE=0.05 ./build/bench/fig23_prefetch_pressure > "$tmp/fig23.txt"
for f in fig22 fig23; do
    grep -q "holds" "$tmp/$f.txt"
    if grep -q VIOLATED "$tmp/$f.txt"; then
        echo "check.sh: $f check line VIOLATED" >&2
        exit 1
    fi
done

echo "== policy: figure stdout identical with knobs at defaults =="
NBL_SCALE=0.05 NBL_PRED_MODE=off NBL_PRED_BITS=8 NBL_PRED_PENALTY=3 \
    NBL_PRED_ACC=1.0 NBL_PF_MODE=off NBL_PF_DEGREE=1 NBL_SSR_WINDOW=0 \
    ./build/bench/fig05_doduc_baseline > "$tmp/fig05.defaults.txt"
diff "$tmp/fig05.defaults.txt" "$tmp/fig05.unset.txt"

echo "== docs: drift gate (knob table + fenced CLI examples) =="
sh tools/docs_check.sh build

echo "== service: daemon answers a fig05 slice bit-identically =="
# Start nbl-labd on a temp socket + cache dir, run the doduc fig05
# sweep through nbl-client with --verify (every point re-simulated
# locally and compared countersEqual), repeat it warm, then shut the
# daemon down over the protocol. docs/SERVICE.md documents the stack.
scale="${NBL_SCALE:-0.05}"
./build/tools/nbl-labd --socket "$tmp/labd.sock" \
    --cache-dir "$tmp/labd-cache" --scale "$scale" &
labd_pid=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    [ -S "$tmp/labd.sock" ] && break
    sleep 0.2
done
./build/tools/nbl-client --socket "$tmp/labd.sock" --ping
./build/tools/nbl-client --socket "$tmp/labd.sock" \
    --workload doduc --fig05 --verify --scale "$scale" > /dev/null
./build/tools/nbl-client --socket "$tmp/labd.sock" \
    --workload doduc --fig05 --verify --scale "$scale" > /dev/null
./build/tools/nbl-client --socket "$tmp/labd.sock" --shutdown
wait "$labd_pid"

echo "check.sh: all passes clean"
