#!/bin/sh
# Tier-1 verification plus a ThreadSanitizer pass over the parallel
# engine. Run from the repository root:
#
#     tools/check.sh [jobs]
#
# Step 1 is the ROADMAP tier-1 gate (full build + ctest). Step 2
# rebuilds with -DNBL_SANITIZE=thread into build-tsan/ and runs the
# parallel-engine and harness tests under TSan, which exercises the
# thread pool, the shared Lab caches (results and event traces), and
# the sweep fan-out.
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== tsan: parallel engine =="
cmake -B build-tsan -S . -DNBL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs" \
    --target test_parallel test_harness test_event_trace
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_parallel
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_harness
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/test_event_trace --gtest_filter='TraceCache*'

echo "check.sh: all passes clean"
