/**
 * @file
 * nbl-report: check reproduction targets and regenerate the
 * measured-vs-paper tables in EXPERIMENTS.md from stats artifacts.
 *
 * Input is the nbl-stats-v1 JSON documents the bench binaries emit
 * (bench/bench_common.hh; regenerate with
 * `NBL_STATS_DIR=data/stats build/bench/figNN_...`). The tool never
 * simulates anything itself -- it is a pure transform from committed
 * artifacts to tables and pass/fail verdicts, so it runs in
 * milliseconds and is scale-agnostic about everything but the
 * figure-specific thresholds.
 *
 *   nbl-report [--stats-dir=DIR] [--experiments=FILE] [mode]
 *
 * Modes:
 *   (none)    print the regenerated tables and run every check;
 *   --write   rewrite the generated regions of EXPERIMENTS.md
 *             (between `<!-- BEGIN nbl_report NAME -->` markers);
 *   --check   verify the in-file regions match the regenerated ones
 *             (the CI drift gate) and run every check; exit 1 on any
 *             failure;
 *   --smoke   with --check: artifacts are from a reduced-scale run,
 *             so skip the drift comparison and the thresholds that
 *             only hold at full scale, keeping the exact invariants
 *             (stall partition, histogram sums, blocking linearity).
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/hierarchy.hh"
#include "core/policy.hh"
#include "harness/paper_data.hh"
#include "policy/stall_policy.hh"
#include "harness/stats_export.hh"
#include "stats/json.hh"
#include "stats/model_stats.hh"
#include "stats/registry.hh"
#include "util/log.hh"

using namespace nbl;

namespace
{

/** One (workload, config) point loaded from an artifact. */
struct Point
{
    std::string workload;
    std::string label;  ///< Config label ("mc=1", ..., or "custom").
    std::string policy; ///< policyKey() string for custom policies.
    /** hierarchyKey() string; empty = the degenerate chain. */
    std::string hierarchy;
    /** stallPolicyKey() string; empty = policies off (the paper). */
    std::string stallPolicy;
    uint64_t cacheBytes = 0;
    uint64_t lineBytes = 0;
    unsigned ways = 0;
    int loadLatency = 0;
    unsigned missPenalty = 0; ///< The override; 0 = pipelined bus.
    unsigned issueWidth = 1;
    bool perfectCache = false;
    stats::Snapshot stats;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Every point from every loaded artifact, deduplicated by key. */
class Artifacts
{
  public:
    void
    loadFile(const std::string &path)
    {
        stats::Json doc = stats::Json::parse(readFile(path));
        if (doc.at("schema").str() != "nbl-stats-v1")
            fatal("%s: unknown schema '%s'", path.c_str(),
                  doc.at("schema").str().c_str());
        for (const stats::Json &r : doc.at("results").array()) {
            const stats::Json &c = r.at("config");
            Point p;
            p.workload = r.at("workload").str();
            p.label = c.at("label").str();
            p.policy = c.at("policy").str();
            p.cacheBytes = c.at("cache_bytes").u64();
            p.lineBytes = c.at("line_bytes").u64();
            p.ways = unsigned(c.at("ways").u64());
            p.loadLatency = int(c.at("load_latency").number());
            p.missPenalty = unsigned(c.at("miss_penalty").u64());
            p.issueWidth = unsigned(c.at("issue_width").u64());
            p.perfectCache = c.at("perfect_cache").boolean();
            if (const stats::Json *h = c.find("hierarchy"))
                p.hierarchy = h->str();
            if (const stats::Json *sp = c.find("stall_policy"))
                p.stallPolicy = sp->str();
            p.stats = stats::snapshotFromJson(r.at("stats"));
            points_.emplace(r.at("key").str(), std::move(p));
        }
        // The fig21 artifact carries the planned-sweep summary as a
        // top-level model.* snapshot instead of result points.
        if (const stats::Json *m = doc.find("model"))
            model_ = stats::modelSummaryFromSnapshot(
                stats::snapshotFromJson(*m));
    }

    /** The planned-sweep summary, when a loaded artifact had one. */
    const std::optional<stats::ModelSummary> &
    model() const
    {
        return model_;
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[key, p] : points_)
            fn(p);
    }

    /**
     * The unique baseline-geometry point matching (workload, label,
     * latency, penalty override). Fatal if absent -- a missing point
     * means the artifact set is stale relative to the benches.
     */
    const Point &
    get(const std::string &workload, const std::string &label,
        int latency, unsigned penalty = 0,
        const std::string &policy = std::string(),
        const std::string &hierarchy = std::string(),
        const std::string &stallPolicy = std::string()) const
    {
        for (const auto &[key, p] : points_) {
            if (p.workload == workload && p.label == label &&
                p.loadLatency == latency &&
                p.missPenalty == penalty && p.policy == policy &&
                p.hierarchy == hierarchy &&
                p.stallPolicy == stallPolicy &&
                p.cacheBytes == 8 * 1024 && p.lineBytes == 32 &&
                p.ways == 1 && p.issueWidth == 1 && !p.perfectCache)
                return p;
        }
        fatal("no artifact point for %s/%s lat=%d pen=%u%s%s%s%s%s%s",
              workload.c_str(), label.c_str(), latency, penalty,
              policy.empty() ? "" : " policy=", policy.c_str(),
              hierarchy.empty() ? "" : " hier=", hierarchy.c_str(),
              stallPolicy.empty() ? "" : " sp=", stallPolicy.c_str());
    }

    double
    mcpi(const std::string &workload, const std::string &label,
         int latency, unsigned penalty = 0,
         const std::string &policy = std::string(),
         const std::string &hierarchy = std::string(),
         const std::string &stallPolicy = std::string()) const
    {
        return get(workload, label, latency, penalty, policy,
                   hierarchy, stallPolicy)
            .stats.derivedValue("cpu.mcpi");
    }

    size_t size() const { return points_.size(); }

    /**
     * Points per producing engine ("exec", "replay", "lane"), from
     * each snapshot's provenance metadata. countersEqual ignores
     * provenance, so an engine switch never trips the numeric drift
     * gate -- this is where it stays visible.
     */
    std::map<std::string, size_t>
    engineCounts() const
    {
        std::map<std::string, size_t> n;
        for (const auto &[key, p] : points_) {
            const std::string &e = p.stats.provenance;
            ++n[e.empty() ? "unknown" : e];
        }
        return n;
    }

    /** engineCounts() rendered as one "lane=240 replay=12" string. */
    std::string
    engineSummary() const
    {
        std::string s;
        for (const auto &[name, count] : engineCounts()) {
            if (!s.empty())
                s += ' ';
            s += strfmt("%s=%zu", name.c_str(), count);
        }
        return s;
    }

  private:
    std::map<std::string, Point> points_;
    std::optional<stats::ModelSummary> model_;
};

int checks_run = 0;
int checks_failed = 0;

void
check(bool ok, const std::string &what)
{
    ++checks_run;
    checks_failed += !ok;
    std::printf("- %s %s\n", ok ? "PASS" : "FAIL", what.c_str());
}

// ---------------------------------------------------------------------
// Table generators. Each returns the body of one generated region
// (the markdown table only; the markers live in EXPERIMENTS.md).
// ---------------------------------------------------------------------

std::string
fig05Table(const Artifacts &a)
{
    double inf = a.mcpi("doduc", "no restrict", 10);
    struct Row { const char *label; const char *paper; };
    const Row rows[] = {
        {"mc=0 +wma", "— (top curve)"}, {"mc=0", "4.1"},
        {"mc=1", "2.9"},                {"mc=2", "1.7"},
        {"fc=1", "2.4"},                {"fc=2", "1.3"},
    };
    std::string out = "| config | paper | measured |\n|---|---|---|\n";
    for (const Row &r : rows) {
        out += strfmt("| %s | %s | %.2f |\n", r.label, r.paper,
                      a.mcpi("doduc", r.label, 10) / inf);
    }
    return out;
}

std::string
fig13Table(const Artifacts &a)
{
    const char *labels[] = {"mc=0", "mc=1", "mc=2",
                            "fc=1", "fc=2", "no restrict"};
    const char *highlights[] = {"doduc",    "ora",   "su2cor",
                                "compress", "eqntott", "xlisp",
                                "swm256"};
    auto fmtRow = [&](const std::array<double, 6> &m) {
        std::string s;
        for (int i = 0; i < 6; ++i)
            s += strfmt("%s%.3f", i ? "/" : "", m[i]);
        s += " (";
        for (int i = 0; i < 5; ++i) {
            s += strfmt("%s%.1f", i ? "/" : "",
                        m[5] > 0 ? m[i] / m[5] : 0.0);
        }
        s += ")";
        return s;
    };
    std::string out =
        "| bench | paper mc0/mc1/mc2/fc1/fc2/inf (ratios) | measured "
        "(ratios) |\n|---|---|---|\n";
    for (const char *name : highlights) {
        auto pr = harness::paper::fig13Row(name);
        if (!pr)
            fatal("no paper Figure 13 row for '%s'", name);
        std::array<double, 6> paper = {pr->mc0, pr->mc1, pr->mc2,
                                       pr->fc1, pr->fc2,
                                       pr->unrestricted};
        std::array<double, 6> meas;
        for (int i = 0; i < 6; ++i)
            meas[size_t(i)] = a.mcpi(name, labels[i], 10);
        out += strfmt("| %s | %s | %s |\n", name,
                      fmtRow(paper).c_str(), fmtRow(meas).c_str());
    }
    return out;
}

/** Display label for one Figure 14 organization. */
std::string
fig14Label(int subBlocks, int missesPerSub)
{
    if (subBlocks == 1)
        return strfmt("explicit, %d field%s", missesPerSub,
                      missesPerSub == 1 ? "" : "s");
    if (missesPerSub == 1)
        return strfmt("implicit, %d sub-blocks", subBlocks);
    return strfmt("hybrid %dx%d", subBlocks, missesPerSub);
}

std::string
fig14Table(const Artifacts &a)
{
    double inf = a.mcpi("doduc", "no restrict", 10);
    std::string out =
        "| organization | paper | measured |\n|---|---|---|\n";
    for (const auto &cell : harness::paper::fig14()) {
        if (cell.subBlocks < 0)
            continue;
        std::string policy = harness::policyKey(
            core::makeFieldPolicy(cell.subBlocks, cell.missesPerSub));
        double m = a.mcpi("doduc", "custom", 10, 0, policy);
        out += strfmt("| %s | %.2f | %.2f |\n",
                      fig14Label(cell.subBlocks, cell.missesPerSub)
                          .c_str(),
                      cell.ratio, m / inf);
    }
    return out;
}

std::string
fig15Table(const Artifacts &a)
{
    double inf = a.mcpi("su2cor", "no restrict", 10);
    struct Row { const char *label; const char *paper; };
    const Row rows[] = {{"mc=1", "11"}, {"fs=1", "2.3"},
                        {"fs=2", "1.3"}, {"fc=2", "4.2"}};
    std::string out = "| config | paper | measured |\n|---|---|---|\n";
    for (const Row &r : rows) {
        out += strfmt("| %s | %s | %.2f |\n", r.label, r.paper,
                      a.mcpi("su2cor", r.label, 10) / inf);
    }
    return out;
}

std::string
fig18Table(const Artifacts &a)
{
    const unsigned pens[] = {4, 16, 128};
    std::string out =
        "| config | paper @ {4,16,128} | measured @ {4,16,128} |\n"
        "|---|---|---|\n";
    for (const char *label : {"mc=0", "mc=1", "fc=2", "no restrict"}) {
        std::string paper, meas;
        for (const auto &pr : harness::paper::fig18()) {
            if (std::string(pr.config) != label)
                continue;
            // paper::fig18Penalties = {4, 8, 16, 32, 64, 128}.
            paper = strfmt("%.3f / %.3f / %.3f", pr.mcpi[0],
                           pr.mcpi[2], pr.mcpi[5]);
        }
        bool first = true;
        for (unsigned pen : pens) {
            meas += strfmt("%s%.3f", first ? "" : " / ",
                           a.mcpi("tomcatv", label, 10, pen));
            first = false;
        }
        const char *note =
            std::strcmp(label, "mc=0") == 0 ? " (exactly linear)" : "";
        out += strfmt("| %s | %s%s | %s%s |\n", label, paper.c_str(),
                      note, meas.c_str(), note);
    }
    return out;
}

/**
 * The memory-side variants of the hierarchy sweep, mirroring
 * bench/fig20_hierarchy.cc (label -> hierarchyKey; "flat" is the
 * degenerate chain and the empty key).
 */
std::vector<std::pair<std::string, std::string>>
fig20MemSides()
{
    core::LevelConfig l2;
    l2.cacheBytes = 64 * 1024;
    l2.lineBytes = 32;
    l2.ways = 4;
    l2.policy.mode = core::CacheMode::MshrFile;
    l2.policy.numMshrs = 4;
    l2.policy.maxMisses = -1;
    l2.policy.fetchesPerSet = -1;
    l2.hitLatency = 4;
    l2.channelInterval = 0;

    std::vector<std::pair<std::string, std::string>> sides;
    sides.emplace_back("flat", "");
    for (unsigned iv : {2u, 6u}) {
        core::HierarchyConfig h;
        h.memChannelInterval = iv;
        sides.emplace_back(strfmt("chan=%u", iv),
                           core::hierarchyKey(h));
    }
    {
        core::HierarchyConfig h;
        h.levels.push_back(l2);
        sides.emplace_back("L2", core::hierarchyKey(h));
        h.memChannelInterval = 6;
        sides.emplace_back("L2+chan=6", core::hierarchyKey(h));
    }
    return sides;
}

std::string
fig20Table(const Artifacts &a)
{
    std::string out = "| config |";
    for (const auto &[label, key] : fig20MemSides())
        out += strfmt(" %s |", label.c_str());
    out += "\n|---|";
    for (size_t i = 0; i < fig20MemSides().size(); ++i)
        out += "---|";
    out += "\n";
    for (const char *label : {"mc=0", "mc=1", "fc=2", "no restrict"}) {
        out += strfmt("| %s |", label);
        for (const auto &[side, key] : fig20MemSides()) {
            out += strfmt(" %.3f |",
                          a.mcpi("doduc", label, 10, 0, "", key));
        }
        out += "\n";
    }
    return out;
}

std::string
fig21Table(const Artifacts &a)
{
    if (!a.model())
        fatal("no model summary loaded (stale fig21 artifact?)");
    const stats::ModelSummary &m = *a.model();
    std::string out = "| quantity | value |\n|---|---|\n";
    out += strfmt("| sweep points (distinct) | %llu |\n",
                  (unsigned long long)m.points);
    out += strfmt("| simulated | %llu (%.1f%%) |\n",
                  (unsigned long long)m.simulated,
                  100.0 * m.simFraction());
    out += strfmt("| served from the model | %llu |\n",
                  (unsigned long long)m.pruned);
    out += strfmt("| provably exact predictions | %llu |\n",
                  (unsigned long long)m.exactPoints);
    out += strfmt("| characterization passes | %llu |\n",
                  (unsigned long long)m.profiles);
    out += strfmt("| max \\|MCPI error\\| (pruned points) | %.4f |\n",
                  m.maxAbsErr);
    out += strfmt("| mean \\|MCPI error\\| | %.4f |\n", m.meanAbsErr);
    out += strfmt("| bound violations | %llu |\n",
                  (unsigned long long)m.boundViolations);
    out += strfmt("| back-substitution mismatches | %llu |\n",
                  (unsigned long long)m.substitutionMismatches);
    return out;
}

/**
 * The predictor points of the level-prediction sweep, mirroring
 * bench/fig22_level_prediction.cc (label -> stallPolicyKey; "off" is
 * a defaulted policy and the empty key).
 */
std::vector<std::pair<std::string, std::string>>
fig22Predictors()
{
    using nbl::policy::PredictorMode;
    std::vector<std::pair<std::string, std::string>> pts;
    pts.emplace_back("off", "");
    for (double acc : {0.50, 0.75, 0.90, 1.00}) {
        nbl::policy::StallPolicyConfig sp;
        sp.predictor.mode = PredictorMode::Synthetic;
        sp.predictor.accuracy = acc;
        pts.emplace_back(strfmt("acc=%.2f", acc),
                         nbl::policy::stallPolicyKey(sp));
    }
    {
        nbl::policy::StallPolicyConfig sp;
        sp.predictor.mode = PredictorMode::Oracle;
        pts.emplace_back("oracle", nbl::policy::stallPolicyKey(sp));
    }
    return pts;
}

std::string
fig22Table(const Artifacts &a)
{
    std::string out = "| config |";
    for (const auto &[label, key] : fig22Predictors())
        out += strfmt(" %s |", label.c_str());
    out += "\n|---|";
    for (size_t i = 0; i < fig22Predictors().size(); ++i)
        out += "---|";
    out += "\n";
    for (const char *label : {"mc=0", "mc=1", "mc=2", "no restrict"}) {
        out += strfmt("| %s |", label);
        for (const auto &[pred, key] : fig22Predictors()) {
            out += strfmt(" %.3f |",
                          a.mcpi("doduc", label, 10, 0, "", "", key));
        }
        out += "\n";
    }
    return out;
}

/**
 * The prefetcher points of the pressure sweep, mirroring
 * bench/fig23_prefetch_pressure.cc.
 */
std::vector<std::pair<std::string, std::string>>
fig23Prefetchers()
{
    std::vector<std::pair<std::string, std::string>> pts;
    pts.emplace_back("off", "");
    for (unsigned d : {1u, 2u, 4u}) {
        nbl::policy::StallPolicyConfig sp;
        sp.prefetch.mode = nbl::policy::PrefetchMode::NextLine;
        sp.prefetch.degree = d;
        pts.emplace_back(strfmt("deg=%u", d),
                         nbl::policy::stallPolicyKey(sp));
    }
    return pts;
}

std::string
fig23Table(const Artifacts &a)
{
    std::string out = "| config |";
    for (const auto &[label, key] : fig23Prefetchers())
        out += strfmt(" %s |", label.c_str());
    out += " denied @ deg=4 |\n|---|";
    for (size_t i = 0; i <= fig23Prefetchers().size(); ++i)
        out += "---|";
    out += "\n";
    for (const char *label : {"mc=1", "mc=2", "fs=1", "no restrict"}) {
        out += strfmt("| %s |", label);
        const Point *deg4 = nullptr;
        for (const auto &[pf, key] : fig23Prefetchers()) {
            const Point &p =
                a.get("tomcatv", label, 10, 0, "", "", key);
            out += strfmt(" %.3f |",
                          p.stats.derivedValue("cpu.mcpi"));
            if (pf == "deg=4")
                deg4 = &p;
        }
        const stats::Scalar *den =
            deg4 ? deg4->stats.findScalar("pf.mshr_denied") : nullptr;
        out += strfmt(" %llu |\n",
                      (unsigned long long)(den ? den->value : 0));
    }
    return out;
}

// ---------------------------------------------------------------------
// Checks.
// ---------------------------------------------------------------------

/** The analytical-model gate: provable properties of the planned
 *  sweep, valid at any scale (the fig21 binary already failed hard if
 *  they broke at generation time; this keeps the committed artifact
 *  honest). */
void
checkModel(const Artifacts &a)
{
    std::printf("\n## Analytical-model gate (fig21)\n\n");
    check(a.model().has_value(),
          "model summary present in the artifact set");
    if (!a.model())
        return;
    const stats::ModelSummary &m = *a.model();
    check(m.boundViolations == 0,
          strfmt("model bounds bracket every simulated point "
                 "(%llu violations)",
                 (unsigned long long)m.boundViolations));
    check(m.substitutionMismatches == 0,
          "back-substituted simulated points identical to a full "
          "sweep");
    check(m.unsupported == 0,
          "the model covers every point of the dense sweep");
    check(m.simFraction() <= 1.0 / 3.0 + 1e-9,
          strfmt("simulated fraction %.1f%% within the 1/3 ceiling",
                 100.0 * m.simFraction()));
    check(m.pruned > 0 && m.exactPoints > 0,
          "the plan actually pruned points and proved some exact");
}

/** Exact invariants that hold at any workload scale. */
void
checkInvariants(const Artifacts &a)
{
    std::printf("\n## Exact invariants (every artifact point)\n\n");
    bool partition = true, dests = true, wbuf = true, mshr = true,
         flight = true;
    size_t n = 0;
    a.forEach([&](const Point &p) {
        ++n;
        const stats::Snapshot &s = p.stats;
        if (p.issueWidth == 1) {
            // Policy-active points carry a fifth stall class
            // (pred.stall_cycles); it is absent -- not zero -- from
            // paper-model snapshots, hence the nullable lookup.
            const stats::Scalar *pred =
                s.findScalar("pred.stall_cycles");
            partition &= s.value("cpu.cycles") ==
                         s.value("cpu.instructions") +
                             s.value("cpu.dep_stall_cycles") +
                             s.value("cpu.struct_stall_cycles") +
                             s.value("cpu.block_stall_cycles") +
                             (pred ? pred->value : 0);
        }
        dests &= s.histogram("cache.dests_per_fetch").total() ==
                 s.value("cache.fetches");
        wbuf &= s.histogram("wbuf.depth_on_push").total() ==
                s.value("wbuf.writes");
        if (p.label != "mc=0" && p.label != "mc=0 +wma" &&
            !p.perfectCache) {
            mshr &= s.histogram("mshr.per_set_occupancy").total() ==
                    s.value("cache.fetches");
        }
        // Both time-weighted histograms cover the same timeline.
        flight &= s.histogram("flight.misses").total() ==
                  s.histogram("flight.fetches").total();
    });
    check(partition, strfmt("stall partition: cycles == instructions "
                            "+ dep + struct + block (%zu points)",
                            n));
    check(dests, "cache.dests_per_fetch sums to cache.fetches");
    check(wbuf, "wbuf.depth_on_push sums to wbuf.writes");
    check(mshr, "mshr.per_set_occupancy sums to cache.fetches "
                "(non-blocking points)");
    check(flight, "flight.misses / flight.fetches cover one timeline");

    // Provenance is metadata, but it must be *recorded*: every
    // artifact names the engine that produced it, so drift-gate
    // output can attribute a change to an engine switch.
    bool engines_known = true;
    a.forEach([&](const Point &p) {
        const std::string &e = p.stats.provenance;
        engines_known &= e == "exec" || e == "replay" || e == "lane";
    });
    check(engines_known,
          strfmt("every artifact names its engine (%s)",
                 a.engineSummary().c_str()));
}

/** Scale-robust shape checks usable on smoke artifacts too. */
void
checkShapes(const Artifacts &a)
{
    std::printf("\n## Shape checks\n\n");

    // Figure 5: restriction ordering for doduc at latency 10.
    double inf = a.mcpi("doduc", "no restrict", 10);
    double wma = a.mcpi("doduc", "mc=0 +wma", 10) / inf;
    double mc0 = a.mcpi("doduc", "mc=0", 10) / inf;
    double mc1 = a.mcpi("doduc", "mc=1", 10) / inf;
    double mc2 = a.mcpi("doduc", "mc=2", 10) / inf;
    double fc1 = a.mcpi("doduc", "fc=1", 10) / inf;
    double fc2 = a.mcpi("doduc", "fc=2", 10) / inf;
    check(wma >= mc0 && mc0 > mc1 && mc1 > mc2 && mc2 >= 1.0,
          "fig05: mc=0 +wma >= mc=0 > mc=1 > mc=2 >= unrestricted");
    check(fc1 > fc2 && fc2 >= 1.0,
          "fig05: fc=1 > fc=2 >= unrestricted");
    check(mc2 < fc1, "fig05: mc=2 beats fc=1 (doduc crossover)");

    // Figure 18: blocking MCPI exactly linear in the penalty.
    double perPen0 = a.mcpi("tomcatv", "mc=0", 10, 4) / 4.0;
    bool linear = true;
    for (unsigned pen : harness::paper::fig18Penalties) {
        double per = a.mcpi("tomcatv", "mc=0", 10, pen) / double(pen);
        linear &= std::fabs(per - perPen0) <= 1e-12 * perPen0;
    }
    check(linear, "fig18: blocking MCPI exactly linear in penalty");
    check(a.mcpi("tomcatv", "no restrict", 10, 32) >
              2.0 * a.mcpi("tomcatv", "no restrict", 10, 16),
          "fig18: unrestricted MCPI super-linear (16 -> 32 more than "
          "doubles)");

    // Figure 22: the synthetic predictor's nested correct-sets make
    // MCPI monotone in accuracy, and the oracle equals policy-off.
    {
        auto preds = fig22Predictors();
        for (const char *label : {"mc=1", "no restrict"}) {
            bool mono = true;
            double prev = 0.0;
            bool have_prev = false;
            for (const auto &[name, key] : preds) {
                if (name == "off" || name == "oracle")
                    continue;
                double m = a.mcpi("doduc", label, 10, 0, "", "", key);
                mono &= !have_prev || m <= prev;
                prev = m;
                have_prev = true;
            }
            check(mono, strfmt("fig22: %s MCPI monotone in predictor "
                               "accuracy", label));
        }
        check(a.mcpi("doduc", "no restrict", 10, 0, "", "",
                     preds.back().second) ==
                  a.mcpi("doduc", "no restrict", 10),
              "fig22: oracle predictor identical to policy-off");
    }

    // Figure 23: prefetch admitted through spare MSHRs only -- the
    // single-register organization denies the entire stream.
    {
        auto pfs = fig23Prefetchers();
        const Point &p = a.get("tomcatv", "mc=1", 10, 0, "", "",
                               pfs.back().second);
        const stats::Scalar *den =
            p.stats.findScalar("pf.mshr_denied");
        const stats::Scalar *iss = p.stats.findScalar("pf.issued");
        check(den && den->value > 0 && iss && iss->value == 0,
              "fig23: mc=1 denies every prefetch (spare-MSHR "
              "contract)");
        check(p.stats.value("run.max_inflight_fetches") <= 1,
              "fig23: mc=1 peak in-flight fetches stays at its one "
              "register under prefetch");
    }

    // Figure 6: in-flight fetches bounded by the pipelined penalty.
    bool bound = true;
    a.forEach([&](const Point &p) {
        if (p.workload == "doduc" && p.missPenalty == 0 &&
            !p.perfectCache && p.issueWidth == 1) {
            bound &= p.stats.value("run.max_inflight_fetches") <=
                     p.stats.value("run.miss_penalty");
        }
    });
    check(bound, "fig06: max in-flight fetches <= miss penalty "
                 "(single issue)");
}

/** Full-scale-only targets (committed artifacts). */
void
checkFullScale(const Artifacts &a)
{
    std::printf("\n## Full-scale reproduction targets\n\n");

    // Figure 13: hit-under-miss sufficient for integer codes,
    // insufficient for clustered-miss numeric codes; ora flat.
    for (const char *name : {"xlisp", "eqntott", "compress", "ora"}) {
        double r = a.mcpi(name, "mc=1", 10) /
                   a.mcpi(name, "no restrict", 10);
        check(r <= 1.15,
              strfmt("fig13: %s mc=1 within 15%% of unrestricted "
                     "(%.2f)", name, r));
    }
    for (const char *name : {"doduc", "su2cor", "swm256"}) {
        double r = a.mcpi(name, "mc=1", 10) /
                   a.mcpi(name, "no restrict", 10);
        check(r >= 1.5,
              strfmt("fig13: %s mc=1 at least 1.5x unrestricted "
                     "(%.2f)", name, r));
    }
    {
        double lo = a.mcpi("ora", "mc=0", 10);
        double hi = a.mcpi("ora", "no restrict", 10);
        check(hi > 0 && std::fabs(lo - hi) <= 1e-9 * hi,
              "fig13: ora identical under every configuration "
              "(serial misses)");
    }

    // Figure 14: more fields / sub-blocks never hurt, and the
    // single-field MSHR is the clear loser.
    double inf = a.mcpi("doduc", "no restrict", 10);
    auto org = [&](int sb, int mps) {
        return a.mcpi("doduc", "custom", 10, 0,
                      harness::policyKey(core::makeFieldPolicy(sb,
                                                               mps))) /
               inf;
    };
    check(org(1, 1) >= org(1, 2) && org(1, 2) >= org(1, 4),
          "fig14: explicit MSHR monotone in field count");
    check(org(2, 1) >= org(4, 1) && org(4, 1) >= org(8, 1),
          "fig14: implicit MSHR monotone in sub-block count");
    check(org(1, 1) >= 1.5 && org(8, 1) <= 1.05,
          strfmt("fig14: 1 field >= 1.5x (%.2f), 8 sub-blocks within "
                 "5%% (%.2f)", org(1, 1), org(8, 1)));

    // Figure 15: per-set limits sit between mc=1 and unrestricted.
    double s_inf = a.mcpi("su2cor", "no restrict", 10);
    double s_mc1 = a.mcpi("su2cor", "mc=1", 10) / s_inf;
    double s_fs1 = a.mcpi("su2cor", "fs=1", 10) / s_inf;
    double s_fs2 = a.mcpi("su2cor", "fs=2", 10) / s_inf;
    double s_fc2 = a.mcpi("su2cor", "fc=2", 10) / s_inf;
    check(s_mc1 > s_fs1 && s_fs1 > s_fs2 && s_fs2 > 1.0,
          "fig15: mc=1 > fs=1 > fs=2 > unrestricted for su2cor");
    check(s_fs1 > s_fc2,
          "fig15: one fetch per set worse than fc=2 for su2cor");

    // Figure 7: the structural share of MCPI grows with the
    // scheduled latency for restricted configurations.
    for (const char *label : {"mc=1", "mc=2", "fc=1"}) {
        double lo = a.get("doduc", label, 1)
                        .stats.derivedValue("cpu.structural_share");
        double hi = a.get("doduc", label, 20)
                        .stats.derivedValue("cpu.structural_share");
        check(hi > lo,
              strfmt("fig07: %s structural share grows with latency "
                     "(%.2f -> %.2f)", label, lo, hi));
    }

    // Hierarchy sweep: the blocking cache never overlaps fetches, so
    // the channel width cannot touch it; a narrower channel never
    // helps the unrestricted cache; the L2 lowers every curve at
    // full scale.
    {
        auto sides = fig20MemSides();
        auto at = [&](const char *label, size_t side) {
            return a.mcpi("doduc", label, 10, 0, "",
                          sides[side].second);
        };
        check(at("mc=0", 0) == at("mc=0", 1) &&
                  at("mc=0", 1) == at("mc=0", 2),
              "fig20: blocking MCPI identical across channel widths");
        check(at("no restrict", 0) <= at("no restrict", 1) &&
                  at("no restrict", 1) <= at("no restrict", 2),
              "fig20: unrestricted MCPI monotone in channel interval");
        for (const char *label : {"mc=0", "mc=1", "fc=2",
                                  "no restrict"}) {
            check(at(label, 3) < at(label, 0),
                  strfmt("fig20: L2 lowers %s MCPI (%.3f < %.3f)",
                         label, at(label, 3), at(label, 0)));
        }
    }
}

// ---------------------------------------------------------------------
// Generated-region plumbing for EXPERIMENTS.md.
// ---------------------------------------------------------------------

std::string
beginMarker(const std::string &name)
{
    return "<!-- BEGIN nbl_report " + name + " -->\n";
}

std::string
endMarker(const std::string &name)
{
    return "<!-- END nbl_report " + name + " -->";
}

/** The regions nbl-report owns, in file order. */
std::vector<std::pair<std::string, std::string>>
generateRegions(const Artifacts &a)
{
    return {{"fig05", fig05Table(a)},
            {"fig13", fig13Table(a)},
            {"fig14", fig14Table(a)},
            {"fig15", fig15Table(a)},
            {"fig18", fig18Table(a)},
            {"fig20", fig20Table(a)},
            {"fig21", fig21Table(a)},
            {"fig22", fig22Table(a)},
            {"fig23", fig23Table(a)}};
}

/**
 * Replace (write=true) or compare (write=false) every generated
 * region in text. Returns the updated text; appends one check() per
 * region in compare mode.
 */
std::string
applyRegions(std::string text, const Artifacts &a, bool write)
{
    for (const auto &[name, body] : generateRegions(a)) {
        std::string begin = beginMarker(name);
        std::string end = endMarker(name);
        size_t b = text.find(begin);
        size_t e = text.find(end);
        if (b == std::string::npos || e == std::string::npos || e < b)
            fatal("EXPERIMENTS.md: missing generated-region markers "
                  "for '%s'", name.c_str());
        size_t body_at = b + begin.size();
        if (write) {
            text = text.substr(0, body_at) + body + text.substr(e);
        } else {
            check(text.substr(body_at, e - body_at) == body,
                  strfmt("EXPERIMENTS.md '%s' table matches "
                         "regenerated data (drift gate)",
                         name.c_str()));
        }
    }
    return text;
}

const char *artifactFiles[] = {
    "fig05_doduc_baseline.json",   "fig06_inflight_histogram.json",
    "fig07_stall_breakdown.json",  "fig13_all18_table.json",
    "fig14_mshr_organizations.json", "fig15_su2cor_per_set.json",
    "fig18_miss_penalty.json",       "fig20_hierarchy.json",
    "fig21_model_prune.json",        "fig22_level_prediction.json",
    "fig23_prefetch_pressure.json",
};

} // namespace

int
main(int argc, char **argv)
{
    std::string stats_dir = "data/stats";
    std::string experiments = "EXPERIMENTS.md";
    bool do_write = false, do_check = false, smoke = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--stats-dir=", 12) == 0)
            stats_dir = arg + 12;
        else if (std::strncmp(arg, "--experiments=", 14) == 0)
            experiments = arg + 14;
        else if (std::strcmp(arg, "--write") == 0)
            do_write = true;
        else if (std::strcmp(arg, "--check") == 0)
            do_check = true;
        else if (std::strcmp(arg, "--smoke") == 0)
            smoke = true;
        else
            fatal("unknown argument '%s'", arg);
    }

    Artifacts a;
    for (const char *f : artifactFiles)
        a.loadFile(stats_dir + "/" + f);
    std::printf("# nbl-report: %zu artifact points from %s "
                "(engines: %s)\n",
                a.size(), stats_dir.c_str(),
                a.engineSummary().c_str());

    if (!do_write && !do_check) {
        for (const auto &[name, body] : generateRegions(a))
            std::printf("\n## %s\n\n%s", name.c_str(), body.c_str());
    }

    checkInvariants(a);
    checkShapes(a);
    checkModel(a);
    if (!smoke)
        checkFullScale(a);

    if (do_write) {
        harness::writeFileOrDie(
            experiments,
            applyRegions(readFile(experiments), a, /*write=*/true));
        std::printf("\nrewrote generated regions in %s\n",
                    experiments.c_str());
    } else if (do_check && !smoke) {
        std::printf("\n## Drift gate (artifacts by engine: %s)\n\n",
                    a.engineSummary().c_str());
        applyRegions(readFile(experiments), a, /*write=*/false);
    }

    std::printf("\n%d checks, %d failed\n", checks_run, checks_failed);
    return checks_failed == 0 ? 0 : 1;
}
