/**
 * @file
 * nbl-client: one-shot CLI client for nbl-labd (docs/SERVICE.md).
 *
 * Builds one request frame, sends it, prints the response. The run
 * vocabulary mirrors nbl-sim, so the same --workload/--config/
 * --latency knobs describe a point whether it is simulated locally or
 * served by the daemon.
 *
 *   nbl-client --ping
 *   nbl-client --workload doduc --config "mc=1" --latency 10
 *   nbl-client --workload doduc --fig05            # 42-point sweep
 *   nbl-client --workload doduc --fig05 --verify   # diff vs local Lab
 *   nbl-client --stats
 *   nbl-client --shutdown
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/experiment.hh"
#include "harness/stats_export.hh"
#include "harness/sweep.hh"
#include "service/framing.hh"
#include "service/protocol.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "stats/run_stats.hh"
#include "util/env.hh"
#include "util/log.hh"

using namespace nbl;

namespace
{

struct Options
{
    std::string socketPath;
    bool tcp = false;
    uint16_t tcpPort = 0;
    std::string workload;
    std::string config = "no restrict";
    int latency = 10;
    uint64_t cacheBytes = 8 * 1024;
    uint64_t lineBytes = 32;
    unsigned ways = 1;
    unsigned penalty = 0;
    unsigned issueWidth = 1;
    unsigned fillPorts = 0;
    bool sweep = false;  ///< All scheduled latencies.
    bool fig05 = false;  ///< Baseline configs x all latencies.
    bool ping = false;
    bool stats = false;
    bool shutdown = false;
    bool verify = false; ///< Re-run locally, require countersEqual.
    bool json = false;   ///< Dump the raw response payload.
    double scale = 1.0;  ///< For --verify's local Lab.
    bool dryRun = false;
};

[[noreturn]] void
usage()
{
    std::printf(
        "nbl-client: one-shot client for nbl-labd\n"
        "\n"
        "  --socket PATH     daemon unix socket (default "
        "$NBL_LABD_SOCKET or /tmp/nbl-labd.sock)\n"
        "  --port N          connect to 127.0.0.1:N instead\n"
        "  --workload NAME   experiment workload (requests a run)\n"
        "  --config LABEL    miss-handling config (no restrict)\n"
        "  --latency N       scheduled load latency (10)\n"
        "  --cache BYTES     cache size (8192)\n"
        "  --line BYTES      line size (32)\n"
        "  --ways N          associativity; 0 = fully assoc (1)\n"
        "  --penalty N       fixed miss penalty; 0 = pipelined bus\n"
        "  --issue N         issue width 1-4 (1)\n"
        "  --fill-ports N    fill register write ports; 0 = unlimited\n"
        "  --sweep           all scheduled latencies for --config\n"
        "  --fig05           the 7 baseline configs x all latencies\n"
        "  --verify          also simulate locally; exit 1 unless "
        "every point is bit-identical (countersEqual)\n"
        "  --scale F         local-Lab workload scale for --verify "
        "(must match the daemon's)\n"
        "  --json            print the raw response payload\n"
        "  --ping | --stats | --shutdown\n"
        "  --dry-run         validate arguments and exit\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    o.socketPath = envString("NBL_LABD_SOCKET", "/tmp/nbl-labd.sock");
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--socket")
            o.socketPath = need(i);
        else if (a == "--port") {
            o.tcp = true;
            o.tcpPort = uint16_t(std::atoi(need(i)));
        } else if (a == "--workload")
            o.workload = need(i);
        else if (a == "--config")
            o.config = need(i);
        else if (a == "--latency")
            o.latency = std::atoi(need(i));
        else if (a == "--cache")
            o.cacheBytes = std::strtoull(need(i), nullptr, 0);
        else if (a == "--line")
            o.lineBytes = std::strtoull(need(i), nullptr, 0);
        else if (a == "--ways")
            o.ways = unsigned(std::atoi(need(i)));
        else if (a == "--penalty")
            o.penalty = unsigned(std::atoi(need(i)));
        else if (a == "--issue")
            o.issueWidth = unsigned(std::atoi(need(i)));
        else if (a == "--fill-ports")
            o.fillPorts = unsigned(std::atoi(need(i)));
        else if (a == "--sweep")
            o.sweep = true;
        else if (a == "--fig05")
            o.fig05 = true;
        else if (a == "--ping")
            o.ping = true;
        else if (a == "--stats")
            o.stats = true;
        else if (a == "--shutdown")
            o.shutdown = true;
        else if (a == "--verify")
            o.verify = true;
        else if (a == "--scale")
            o.scale = std::atof(need(i));
        else if (a == "--json")
            o.json = true;
        else if (a == "--dry-run")
            o.dryRun = true;
        else
            usage();
    }
    return o;
}

/** The experiment points a run request asks for, in request order. */
std::vector<std::pair<std::string, harness::ExperimentConfig>>
pointsOf(const Options &o)
{
    std::vector<core::ConfigName> cfgs;
    if (o.fig05) {
        cfgs = harness::baselineConfigList();
    } else {
        core::ConfigName cfg;
        if (!core::parseConfigLabel(o.config, &cfg))
            fatal("unknown config '%s'", o.config.c_str());
        cfgs.push_back(cfg);
    }
    std::vector<int> latencies;
    if (o.sweep || o.fig05)
        latencies.assign(std::begin(harness::paperLatencies),
                         std::end(harness::paperLatencies));
    else
        latencies.push_back(o.latency);

    std::vector<std::pair<std::string, harness::ExperimentConfig>>
        points;
    for (core::ConfigName cfg : cfgs) {
        for (int lat : latencies) {
            harness::ExperimentConfig e;
            e.cacheBytes = o.cacheBytes;
            e.lineBytes = o.lineBytes;
            e.ways = o.ways;
            e.config = cfg;
            e.loadLatency = lat;
            e.missPenalty = o.penalty;
            e.issueWidth = o.issueWidth;
            e.fillWritePorts = o.fillPorts;
            points.emplace_back(o.workload, e);
        }
    }
    return points;
}

std::string
runRequest(const Options &o,
           const std::vector<std::pair<std::string,
                                       harness::ExperimentConfig>>
               &points)
{
    (void)o;
    std::string out = "{\"v\": 1, \"id\": 1, \"kind\": \"run\", "
                      "\"points\": [";
    for (size_t i = 0; i < points.size(); ++i) {
        out += strfmt("%s\n {\"workload\": %s, \"config\": %s}",
                      i ? "," : "",
                      stats::jsonQuote(points[i].first).c_str(),
                      harness::configJson(points[i].second).c_str());
    }
    out += "\n]}";
    return out;
}

int
connectDaemon(const Options &o)
{
    if (o.tcp) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket(): %s", std::strerror(errno));
        sockaddr_in in{};
        in.sin_family = AF_INET;
        in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        in.sin_port = htons(o.tcpPort);
        if (::connect(fd, (const sockaddr *)&in, sizeof(in)) < 0)
            fatal("connect to 127.0.0.1:%u: %s", unsigned(o.tcpPort),
                  std::strerror(errno));
        return fd;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket(): %s", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (o.socketPath.size() >= sizeof(addr.sun_path))
        fatal("socket path too long: %s", o.socketPath.c_str());
    std::strncpy(addr.sun_path, o.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) < 0)
        fatal("connect to '%s': %s (is nbl-labd running?)",
              o.socketPath.c_str(), std::strerror(errno));
    return fd;
}

/** Send one frame, read one frame; fatal on transport failure. */
std::string
roundTrip(int fd, const std::string &payload)
{
    if (!service::writeFrame(fd, payload))
        fatal("failed to send request: %s", std::strerror(errno));
    std::string response, err;
    service::ReadStatus st = service::readFrame(fd, &response, &err);
    if (st != service::ReadStatus::Ok)
        fatal("failed to read response: %s",
              st == service::ReadStatus::Eof ? "connection closed"
                                             : err.c_str());
    return response;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    bool run = !o.workload.empty();
    if (int(run) + int(o.ping) + int(o.stats) + int(o.shutdown) != 1)
        usage();
    std::vector<std::pair<std::string, harness::ExperimentConfig>>
        points;
    if (run)
        points = pointsOf(o); // Validates workload-side arguments.
    if (o.dryRun)
        return 0;

    std::string request;
    if (o.ping)
        request = "{\"v\": 1, \"id\": 1, \"kind\": \"ping\"}";
    else if (o.stats)
        request = "{\"v\": 1, \"id\": 1, \"kind\": \"stats\"}";
    else if (o.shutdown)
        request = "{\"v\": 1, \"id\": 1, \"kind\": \"shutdown\"}";
    else
        request = runRequest(o, points);

    int fd = connectDaemon(o);
    std::string payload = roundTrip(fd, request);
    ::close(fd);

    if (o.json)
        std::printf("%s\n", payload.c_str());

    std::string perr;
    std::optional<stats::Json> doc =
        stats::Json::tryParse(payload, &perr);
    if (!doc)
        fatal("unparseable response: %s", perr.c_str());
    const stats::Json *ok = doc->find("ok");
    if (!ok || !ok->isBool() || !ok->boolean()) {
        const stats::Json *e = doc->find("error");
        if (e && e->isObject())
            fatal("daemon error [%s]: %s", e->at("code").str().c_str(),
                  e->at("message").str().c_str());
        fatal("daemon error: %s", payload.c_str());
    }

    if (!run) {
        if (!o.json)
            std::printf("%s\n", doc->at("kind").str().c_str());
        return 0;
    }

    const std::vector<stats::Json> &results =
        doc->at("results").array();
    if (results.size() != points.size())
        fatal("daemon returned %zu results for %zu points",
              results.size(), points.size());

    harness::Lab lab(o.scale);
    size_t mismatches = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const stats::Json &r = results[i];
        stats::Snapshot snap = stats::snapshotFromJson(r.at("stats"));
        const std::string &cached = r.at("cached").str();
        std::string verdict;
        if (o.verify) {
            stats::Snapshot local = stats::snapshotOfRun(
                lab.run(points[i].first, points[i].second).run);
            bool equal = local.countersEqual(snap);
            mismatches += equal ? 0 : 1;
            verdict = equal ? "  verify=ok" : "  verify=MISMATCH";
        }
        if (!o.json)
            std::printf("%-10s %-11s lat %-3d %-8s mcpi %.4f%s\n",
                        points[i].first.c_str(),
                        core::configLabel(points[i].second.config),
                        points[i].second.loadLatency, cached.c_str(),
                        snap.derivedValue("cpu.mcpi"),
                        verdict.c_str());
    }
    if (o.verify) {
        std::printf("verify: %zu/%zu points bit-identical\n",
                    points.size() - mismatches, points.size());
        return mismatches == 0 ? 0 : 1;
    }
    return 0;
}
