/**
 * @file
 * nbl-sim: command-line driver for the simulator.
 *
 * Runs one workload (or all of them) under one configuration (or all
 * of them) and prints MCPI plus the stall breakdown, or emits the
 * full latency sweep as CSV for plotting. Everything the bench
 * binaries do is reachable from here with explicit knobs.
 *
 *   nbl-sim --list
 *   nbl-sim --workload tomcatv --config mc=1 --latency 10
 *   nbl-sim --workload doduc --config all
 *   nbl-sim --workload su2cor --sweep --csv > su2cor.csv
 *   nbl-sim --workload xlisp --cache 8192 --ways 0   # fully assoc
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "policy/stall_policy.hh"
#include "service/protocol.hh"
#include "util/log.hh"
#include "util/parse.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace nbl;

namespace
{

struct Options
{
    std::string workload = "doduc";
    std::string config = "no restrict";
    int latency = 10;
    uint64_t cacheBytes = 8 * 1024;
    uint64_t lineBytes = 32;
    unsigned ways = 1;
    unsigned penalty = 0;
    unsigned issueWidth = 1;
    unsigned fillPorts = 0;
    double scale = 1.0;
    bool sweep = false;
    bool csv = false;
    bool plot = false;
    bool list = false;
    bool dryRun = false;
};

// Config labels are parsed by core::parseConfigLabel -- one
// vocabulary shared with the daemon's request schema (src/service/),
// so any label this CLI accepts is valid in a service request too.

[[noreturn]] void
usage()
{
    std::printf(
        "nbl-sim: non-blocking-loads cache simulator\n"
        "\n"
        "  --workload NAME|all   synthetic SPEC92 stand-in (doduc)\n"
        "  --config LABEL|all    miss-handling config (no restrict)\n"
        "  --latency N           scheduled load latency (10)\n"
        "  --cache BYTES         cache size (8192)\n"
        "  --line BYTES          line size (32)\n"
        "  --ways N              associativity; 0 = fully assoc (1)\n"
        "  --penalty N           fixed miss penalty; 0 = pipelined "
        "bus model\n"
        "  --issue N             issue width 1-4 (1)\n"
        "  --fill-ports N        register write ports for fills; 0 = "
        "unlimited\n"
        "  --scale F             workload size multiplier (1.0)\n"
        "  --sweep               sweep all scheduled latencies\n"
        "  --csv                 with --sweep: emit CSV\n"
        "  --plot                with --sweep: ASCII plot\n"
        "  --list                list workloads and configs\n"
        "  --dry-run             validate arguments and exit (docs "
        "smoke checks)\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    // Strict numeric arguments: trailing garbage and overflow are
    // usage errors, not silently truncated values (util/parse.hh).
    auto needInt = [&](int &i, const char *flag, int64_t lo,
                       int64_t hi) -> int64_t {
        const char *v = need(i);
        int64_t n = 0;
        if (!parseInt64(v, &n) || n < lo || n > hi)
            fatal("%s: '%s' is not an integer in [%lld, %lld]", flag,
                  v, (long long)lo, (long long)hi);
        return n;
    };
    auto needUint = [&](int &i, const char *flag) -> uint64_t {
        const char *v = need(i);
        uint64_t n = 0;
        if (!parseUint64(v, &n))
            fatal("%s: '%s' is not a non-negative integer", flag, v);
        return n;
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--workload")
            o.workload = need(i);
        else if (a == "--config")
            o.config = need(i);
        else if (a == "--latency")
            o.latency = int(needInt(i, "--latency", INT32_MIN,
                                    INT32_MAX));
        else if (a == "--cache")
            o.cacheBytes = needUint(i, "--cache");
        else if (a == "--line")
            o.lineBytes = needUint(i, "--line");
        else if (a == "--ways")
            o.ways = unsigned(needInt(i, "--ways", 0, INT32_MAX));
        else if (a == "--penalty")
            o.penalty =
                unsigned(needInt(i, "--penalty", 0, INT32_MAX));
        else if (a == "--issue")
            o.issueWidth =
                unsigned(needInt(i, "--issue", 0, INT32_MAX));
        else if (a == "--fill-ports")
            o.fillPorts =
                unsigned(needInt(i, "--fill-ports", 0, INT32_MAX));
        else if (a == "--scale") {
            const char *v = need(i);
            if (!parseDouble(v, &o.scale))
                fatal("--scale: '%s' is not a number", v);
        } else if (a == "--sweep")
            o.sweep = true;
        else if (a == "--csv")
            o.csv = true;
        else if (a == "--plot")
            o.plot = true;
        else if (a == "--list")
            o.list = true;
        else if (a == "--dry-run")
            o.dryRun = true;
        else
            usage();
    }
    return o;
}

harness::ExperimentConfig
experimentOf(const Options &o, core::ConfigName cfg)
{
    harness::ExperimentConfig e;
    e.cacheBytes = o.cacheBytes;
    e.lineBytes = o.lineBytes;
    e.ways = o.ways;
    e.config = cfg;
    e.loadLatency = o.latency;
    e.missPenalty = o.penalty;
    e.issueWidth = o.issueWidth;
    e.fillWritePorts = o.fillPorts;
    return e;
}

void
printRun(const std::string &wl, const std::string &label,
         const harness::ExperimentResult &r)
{
    const auto &c = r.run.cpu;
    const auto &k = r.run.cache;
    std::printf(
        "%-10s %-11s MCPI %.4f  (dep %.4f struct %.4f block %.4f)  "
        "instrs %llu  load miss %.2f%% (sec %.2f%%)  peak mshr %u\n",
        wl.c_str(), label.c_str(), c.mcpi(),
        double(c.depStallCycles) / double(c.instructions),
        double(c.structStallCycles) / double(c.instructions),
        double(c.blockStallCycles) / double(c.instructions),
        (unsigned long long)c.instructions,
        100.0 * k.loadMissRate(), 100.0 * k.secondaryMissRate(),
        r.run.maxInflightMisses);
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    if (o.list) {
        std::printf("workloads:");
        for (const auto &w : workloads::workloadNames())
            std::printf(" %s", w.c_str());
        std::printf("\nconfigs:");
        for (core::ConfigName cfg : core::allConfigNames)
            std::printf(" '%s'", core::configLabel(cfg));
        std::printf("\n");
        return 0;
    }

    std::vector<std::string> wls;
    if (o.workload == "all") {
        wls = workloads::workloadNames();
    } else {
        bool known = false;
        for (const auto &w : workloads::workloadNames())
            known = known || w == o.workload;
        if (!known)
            fatal("unknown workload '%s' (try --list)",
                  o.workload.c_str());
        wls.push_back(o.workload);
    }

    std::vector<std::pair<std::string, core::ConfigName>> cfgs;
    if (o.config == "all") {
        for (core::ConfigName cfg : core::allConfigNames)
            cfgs.emplace_back(core::configLabel(cfg), cfg);
    } else {
        core::ConfigName cfg;
        if (!core::parseConfigLabel(o.config, &cfg))
            fatal("unknown config '%s' (try --list)", o.config.c_str());
        cfgs.emplace_back(o.config, cfg);
    }

    if (o.dryRun) {
        // Full validation, not just label parsing: run the same range
        // checks the daemon's request schema applies, so the CLI and
        // the protocol agree on what is rejected. Also resolve the
        // stall-policy environment knobs -- stallPolicyFromEnv
        // panics on a malformed knob, surfacing it here rather than
        // mid-run.
        harness::ExperimentConfig probe =
            experimentOf(o, cfgs[0].second);
        probe.stallPolicy = nbl::policy::stallPolicyFromEnv();
        std::string err;
        if (!service::validateConfig(probe, &err))
            fatal("invalid configuration: %s", err.c_str());
        return 0;
    }

    harness::Lab lab(o.scale);

    if (o.sweep) {
        std::vector<core::ConfigName> names;
        for (const auto &[label, cfg] : cfgs)
            names.push_back(cfg);
        for (const auto &wl : wls) {
            auto curves = harness::sweepCurves(
                lab, wl, experimentOf(o, cfgs[0].second), names);
            if (o.csv) {
                std::printf("# %s\n%s", wl.c_str(),
                            harness::curvesCsv(curves).c_str());
            } else {
                harness::printCurves(wl + ": miss CPI vs scheduled "
                                          "load latency",
                                     curves);
                if (o.plot)
                    harness::plotCurves(curves);
            }
        }
        return 0;
    }

    for (const auto &wl : wls) {
        for (const auto &[label, cfg] : cfgs)
            printRun(wl, label, lab.run(wl, experimentOf(o, cfg)));
    }
    return 0;
}
