/**
 * @file
 * nbl-fuzz: differential fuzzer driver (docs/TESTING.md).
 *
 * Draws seeded random (program, configuration-set) points
 * (check/generator.hh) and pushes each through every engine the repo
 * has, asserting the cross-engine identities and model invariants
 * (check/differential.hh). On the first failure the case is
 * minimized (check/shrink.hh) and printed in the `nbl-fuzz-repro v1`
 * format, ready to paste into a regression test or replay with
 * `--repro`.
 *
 *   nbl-fuzz [--seeds=N] [--start=SEED] [--budget=SECONDS]
 *            [--max-instructions=N] [--no-lab] [--jobs=N]
 *            [--write-repro=FILE] [--repro=FILE]
 *
 *   --seeds=N         seeds to try (default 200)
 *   --start=SEED      first seed (default 1)
 *   --budget=SECONDS  wall-clock budget; stop early when exceeded
 *                     (default 0 = no budget)
 *   --no-lab          skip the Lab serial/parallel cross-check
 *   --jobs=N          worker threads for the parallel Lab pass
 *   --write-repro=F   also write the shrunk repro to file F
 *   --repro=FILE      replay one repro file instead of fuzzing
 *
 * Exit status: 0 = clean, 1 = divergence found (or repro still
 * failing), 2 = usage/parse error.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/differential.hh"
#include "check/shrink.hh"
#include "util/log.hh"

using namespace nbl;

namespace
{

bool
flagValue(const char *arg, const char *name, const char **value)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    *value = arg + n + 1;
    return true;
}

int
replayRepro(const std::string &path, const check::CheckOptions &opts)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "nbl-fuzz: cannot open %s\n",
                     path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    check::ShrunkCase c;
    if (!check::parseRepro(ss.str(), c)) {
        std::fprintf(stderr, "nbl-fuzz: %s is not a valid repro\n",
                     path.c_str());
        return 2;
    }
    std::vector<check::Divergence> divs =
        check::checkProgram(c.program, c.cfgs, opts);
    for (const check::Divergence &d : divs)
        std::printf("FAIL %s\n", d.str().c_str());
    if (divs.empty()) {
        std::printf("repro %s: clean (%zu instructions, %zu configs)\n",
                    path.c_str(), c.program.size(), c.cfgs.size());
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seeds = 200;
    uint64_t start = 1;
    uint64_t budget_s = 0;
    std::string repro_path;
    std::string write_repro;
    check::CheckOptions opts;

    for (int i = 1; i < argc; ++i) {
        const char *v = nullptr;
        if (flagValue(argv[i], "--seeds", &v)) {
            seeds = std::strtoull(v, nullptr, 10);
        } else if (flagValue(argv[i], "--start", &v)) {
            start = std::strtoull(v, nullptr, 10);
        } else if (flagValue(argv[i], "--budget", &v)) {
            budget_s = std::strtoull(v, nullptr, 10);
        } else if (flagValue(argv[i], "--max-instructions", &v)) {
            opts.maxInstructions = std::strtoull(v, nullptr, 10);
        } else if (flagValue(argv[i], "--jobs", &v)) {
            opts.labJobs = unsigned(std::strtoul(v, nullptr, 10));
        } else if (std::strcmp(argv[i], "--no-lab") == 0) {
            opts.lab = false;
        } else if (flagValue(argv[i], "--write-repro", &v)) {
            write_repro = v;
        } else if (flagValue(argv[i], "--repro", &v)) {
            repro_path = v;
        } else {
            std::fprintf(stderr, "nbl-fuzz: unknown argument %s\n",
                         argv[i]);
            return 2;
        }
    }

    if (!repro_path.empty())
        return replayRepro(repro_path, opts);

    const auto t0 = std::chrono::steady_clock::now();
    auto out_of_budget = [&] {
        if (budget_s == 0)
            return false;
        auto dt = std::chrono::steady_clock::now() - t0;
        return std::chrono::duration_cast<std::chrono::seconds>(dt)
                   .count() >= long(budget_s);
    };

    uint64_t done = 0;
    for (uint64_t seed = start; seed < start + seeds; ++seed) {
        if (out_of_budget()) {
            std::printf("budget exhausted after %llu seeds\n",
                        (unsigned long long)done);
            break;
        }
        std::vector<check::Divergence> divs =
            check::checkSeed(seed, opts);
        ++done;
        if (divs.empty()) {
            if (done % 50 == 0)
                std::printf("... %llu seeds clean\n",
                            (unsigned long long)done);
            continue;
        }

        for (const check::Divergence &d : divs)
            std::printf("FAIL %s\n", d.str().c_str());

        // Minimize while the *same* identity still fails (shrinking
        // into a different bug would be confusing, not helpful).
        const std::string focus = divs.front().check;
        Rng rng(seed);
        isa::Program program = check::generateProgram(rng);
        std::vector<harness::ExperimentConfig> cfgs =
            check::generateConfigs(rng);
        check::CheckOptions sopts = opts;
        sopts.lab = focus.rfind("lab", 0) == 0;
        check::ShrunkCase shrunk = check::shrinkCase(
            program, cfgs,
            [&](const isa::Program &p,
                const std::vector<harness::ExperimentConfig> &cs) {
                for (const check::Divergence &d :
                     check::checkProgram(p, cs, sopts))
                    if (d.check == focus)
                        return true;
                return false;
            });
        std::string text = check::formatRepro(shrunk);
        std::printf("shrunk to %zu instructions, %zu configs:\n%s",
                    shrunk.program.size(), shrunk.cfgs.size(),
                    text.c_str());
        if (!write_repro.empty()) {
            std::ofstream out(write_repro);
            out << text;
            std::printf("repro written to %s\n", write_repro.c_str());
        }
        return 1;
    }

    std::printf("nbl-fuzz: %llu seeds clean (start=%llu)\n",
                (unsigned long long)done, (unsigned long long)start);
    return 0;
}
