/**
 * @file
 * Example: the complexity/performance tradeoff itself. For a workload
 * of your choice, sweep MSHR organizations from a blocking cache to
 * an inverted MSHR, printing hardware cost (section-2 storage bits
 * and comparators) against measured MCPI -- the engineering view a
 * cache designer would want from the paper. A second MCPI column
 * re-runs each design over a two-level memory side (64KB L2, narrow
 * miss channel) to show how the knee shifts once the memory below
 * the L1 has finite bandwidth.
 *
 * Usage: mshr_design_explorer [workload] (default: doduc)
 */

#include <cstdio>
#include <string>

#include "core/mshr_cost.hh"
#include "harness/experiment.hh"

using namespace nbl;

int
main(int argc, char **argv)
{
    std::string wl = argc > 1 ? argv[1] : "doduc";
    harness::Lab lab(0.5);

    std::printf("MSHR design explorer: %s, baseline cache, scheduled "
                "load latency 10\n\n", wl.c_str());
    std::printf("%-22s %8s %6s %8s %9s %8s\n", "organization", "bits",
                "cmps", "MCPI", "vs block", "+L2ch6");

    // The two-level memory side for the last column: a 64KB 4-way L2
    // and a memory channel accepting one fetch every 6 cycles.
    core::HierarchyConfig two_level;
    {
        core::LevelConfig l2;
        l2.cacheBytes = 64 * 1024;
        l2.lineBytes = 32;
        l2.ways = 4;
        l2.policy.mode = core::CacheMode::MshrFile;
        l2.policy.numMshrs = 4;
        l2.policy.maxMisses = -1;
        l2.policy.fetchesPerSet = -1;
        l2.hitLatency = 4;
        two_level.levels.push_back(l2);
        two_level.memChannelInterval = 6;
    }

    core::CostParams cp;

    struct Option
    {
        std::string label;
        core::MshrPolicy policy;
    };
    std::vector<Option> options;
    for (auto c : {core::ConfigName::Mc0, core::ConfigName::Mc1,
                   core::ConfigName::Mc2, core::ConfigName::Fc1,
                   core::ConfigName::Fc2, core::ConfigName::Fs1,
                   core::ConfigName::NoRestrict}) {
        options.push_back({core::configLabel(c), core::makePolicy(c)});
    }
    // A practical middle ground: four explicitly addressed MSHRs with
    // four fields each (the paper's 112-bit MSHR, times four).
    {
        core::MshrPolicy p = core::makeFieldPolicy(1, 4);
        p.numMshrs = 4;
        options.push_back({"4x explicit(4)", p});
    }
    // And the hybrid the paper highlights: 2 sub-blocks x 2 misses.
    {
        core::MshrPolicy p = core::makeFieldPolicy(2, 2);
        p.numMshrs = 4;
        options.push_back({"4x hybrid(2x2)", p});
    }

    double blocking = 0.0;
    for (const Option &o : options) {
        harness::ExperimentConfig e;
        e.loadLatency = 10;
        e.customPolicy = o.policy;
        double mcpi = lab.run(wl, e).mcpi();
        if (blocking == 0.0)
            blocking = mcpi;
        harness::ExperimentConfig h = e;
        h.hierarchy = two_level;
        double mcpi_l2 = lab.run(wl, h).mcpi();
        core::MshrCost cost = core::policyCost(cp, o.policy);
        std::printf("%-22s %8llu %6llu %8.3f %8.1f%% %8.3f\n",
                    o.label.c_str(),
                    (unsigned long long)cost.totalBits(),
                    (unsigned long long)cost.comparators, mcpi,
                    100.0 * (blocking - mcpi) /
                        (blocking > 0 ? blocking : 1.0),
                    mcpi_l2);
    }

    std::printf("\nreading: pick the cheapest row that reaches your "
                "MCPI target. For integer codes the knee is mc=1; for "
                "numeric codes it is mc=2/fc=2 (paper section 7). The "
                "+L2ch6 column shows the same designs over a 64KB L2 "
                "with a 1-fetch-per-6-cycles memory channel: the L2 "
                "shrinks every gap, so extra MSHRs buy less.\n");
    return 0;
}
