/**
 * @file
 * Example: the paper's compiler-side conclusion -- "schedule load
 * instructions for cache misses rather than cache hits". This example
 * compiles one workload at every scheduled load latency and shows how
 * the same hardware's MCPI moves, plus the code-size cost (register
 * spills) the longer schedules pay.
 *
 * Usage: compiler_scheduling [workload] (default: fpppp)
 */

#include <cstdio>
#include <string>

#include "harness/experiment.hh"

using namespace nbl;

int
main(int argc, char **argv)
{
    std::string wl = argc > 1 ? argv[1] : "fpppp";
    harness::Lab lab(0.5);

    std::printf("scheduling study: %s on the baseline cache\n\n",
                wl.c_str());
    std::printf("%-4s | %8s %8s %8s | %10s %10s\n", "lat", "mc=1",
                "fc=2", "norestr", "spill refs", "instrs");

    for (int lat : harness::paperLatencies) {
        double m[3];
        int i = 0;
        harness::ExperimentResult last;
        for (auto cfg : {core::ConfigName::Mc1, core::ConfigName::Fc2,
                         core::ConfigName::NoRestrict}) {
            harness::ExperimentConfig e;
            e.loadLatency = lat;
            e.config = cfg;
            last = lab.run(wl, e);
            m[i++] = last.mcpi();
        }
        std::printf("%-4d | %8.3f %8.3f %8.3f | %10u %10llu\n", lat,
                    m[0], m[1], m[2],
                    last.compileInfo.spillLoads +
                        last.compileInfo.spillStores,
                    (unsigned long long)last.run.cpu.instructions);
    }

    std::printf(
        "\nreading: with non-blocking hardware, MCPI keeps falling as "
        "the compiler schedules for longer (miss-like) latencies; the "
        "price is register pressure -- spill references grow with the "
        "assumed latency (the paper's Figure 4 effect).\n");
    return 0;
}
