/**
 * @file
 * Quickstart: build a workload, compile it at two scheduled load
 * latencies, and compare a blocking cache, hit-under-miss, and an
 * unrestricted lockup-free cache on the paper's baseline system.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

using namespace nbl;

int
main()
{
    harness::Lab lab(0.25); // quarter-size workloads: quick demo

    std::printf("Non-blocking loads quickstart\n");
    std::printf("baseline: 8KB direct-mapped cache, 32B lines, "
                "16-cycle miss penalty\n\n");

    for (const char *wl : {"tomcatv", "eqntott"}) {
        for (int lat : {1, 10}) {
            std::printf("%s scheduled for load latency %d:\n", wl, lat);
            for (auto cfg : {core::ConfigName::Mc0,
                             core::ConfigName::Mc1,
                             core::ConfigName::NoRestrict}) {
                harness::ExperimentConfig e;
                e.config = cfg;
                e.loadLatency = lat;
                auto r = lab.run(wl, e);
                std::printf(
                    "  %-12s MCPI %.3f  (dep %.3f struct %.3f block "
                    "%.3f; load miss rate %.1f%%)\n",
                    core::configLabel(cfg), r.mcpi(),
                    double(r.run.cpu.depStallCycles) /
                        double(r.run.cpu.instructions),
                    double(r.run.cpu.structStallCycles) /
                        double(r.run.cpu.instructions),
                    double(r.run.cpu.blockStallCycles) /
                        double(r.run.cpu.instructions),
                    100.0 * r.run.cache.loadMissRate());
            }
        }
        std::printf("\n");
    }
    return 0;
}
