/**
 * @file
 * Quickstart: build a workload, compile it at two scheduled load
 * latencies, and compare a blocking cache, hit-under-miss, and an
 * unrestricted lockup-free cache on the paper's baseline system.
 * Ends with the hierarchy config API: the same sweep with an L2
 * between the L1 and memory instead of the paper's flat memory.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

using namespace nbl;

int
main()
{
    harness::Lab lab(0.25); // quarter-size workloads: quick demo

    std::printf("Non-blocking loads quickstart\n");
    std::printf("baseline: 8KB direct-mapped cache, 32B lines, "
                "16-cycle miss penalty\n\n");

    for (const char *wl : {"tomcatv", "eqntott"}) {
        for (int lat : {1, 10}) {
            std::printf("%s scheduled for load latency %d:\n", wl, lat);
            for (auto cfg : {core::ConfigName::Mc0,
                             core::ConfigName::Mc1,
                             core::ConfigName::NoRestrict}) {
                harness::ExperimentConfig e;
                e.config = cfg;
                e.loadLatency = lat;
                auto r = lab.run(wl, e);
                std::printf(
                    "  %-12s MCPI %.3f  (dep %.3f struct %.3f block "
                    "%.3f; load miss rate %.1f%%)\n",
                    core::configLabel(cfg), r.mcpi(),
                    double(r.run.cpu.depStallCycles) /
                        double(r.run.cpu.instructions),
                    double(r.run.cpu.structStallCycles) /
                        double(r.run.cpu.instructions),
                    double(r.run.cpu.blockStallCycles) /
                        double(r.run.cpu.instructions),
                    100.0 * r.run.cache.loadMissRate());
            }
        }
        std::printf("\n");
    }

    // The memory side is configurable: ExperimentConfig::hierarchy
    // inserts cache levels (and finite-bandwidth miss channels)
    // between the L1 and memory. Default-constructed it is the
    // paper's flat pipelined memory, bit-identical to the runs above.
    core::LevelConfig l2;
    l2.cacheBytes = 64 * 1024;
    l2.lineBytes = 32;
    l2.ways = 4;
    l2.policy.mode = core::CacheMode::MshrFile;
    l2.policy.numMshrs = 4;
    l2.policy.maxMisses = -1;
    l2.policy.fetchesPerSet = -1;
    l2.hitLatency = 4;

    // Half-size here: at quarter size doduc's miss stream is still
    // all cold misses, so the L2 would have nothing to capture.
    harness::Lab l2_lab(0.5);
    std::printf("doduc at latency 10 with a 64KB 4-way L2 below "
                "the L1:\n");
    for (auto cfg : {core::ConfigName::Mc0, core::ConfigName::Mc1,
                     core::ConfigName::NoRestrict}) {
        harness::ExperimentConfig e;
        e.config = cfg;
        e.loadLatency = 10;
        e.hierarchy.levels.push_back(l2);
        auto r = l2_lab.run("doduc", e);
        std::printf("  %-12s MCPI %.3f  (L2 hit rate %.1f%%)\n",
                    core::configLabel(cfg), r.mcpi(),
                    r.run.hier.levels.empty() ||
                            r.run.hier.levels[0].requests == 0
                        ? 0.0
                        : 100.0 *
                              double(r.run.hier.levels[0].hits) /
                              double(r.run.hier.levels[0].requests));
    }
    return 0;
}
