/**
 * @file
 * Example: back-pressure from below. An unrestricted lockup-free L1
 * can start as many fetches as the program offers, but everything
 * below it is finite: an L2 with its own MSHR file and a memory
 * channel that accepts one fetch every N cycles. This example
 * narrows the memory channel step by step and watches the pressure
 * climb back up the hierarchy -- fills queue on the channel, L2
 * MSHRs stay busy longer, and the L1's overlap (and MCPI) erodes
 * toward the blocking cache.
 *
 * Usage: two_level_backpressure [workload] (default: doduc)
 */

#include <cstdio>
#include <string>

#include "harness/experiment.hh"

using namespace nbl;

int
main(int argc, char **argv)
{
    std::string wl = argc > 1 ? argv[1] : "doduc";
    harness::Lab lab(0.5);

    std::printf("two-level back-pressure: %s, no-restrict L1 over a "
                "64KB L2, scheduled load latency 10\n\n",
                wl.c_str());
    std::printf("%-10s %8s %10s %12s %12s %11s\n", "mem chan", "MCPI",
                "L2 hit%", "chan sends", "delayed", "queue cyc");

    core::LevelConfig l2;
    l2.cacheBytes = 64 * 1024;
    l2.lineBytes = 32;
    l2.ways = 4;
    l2.policy.mode = core::CacheMode::MshrFile;
    l2.policy.numMshrs = 4;
    l2.policy.maxMisses = -1;
    l2.policy.fetchesPerSet = -1;
    l2.hitLatency = 4;

    // Interval 0 is an infinitely wide channel (the paper's pipelined
    // memory); each step halves the bandwidth below the L2.
    for (unsigned interval : {0u, 2u, 4u, 8u, 16u}) {
        harness::ExperimentConfig e;
        e.config = core::ConfigName::NoRestrict;
        e.loadLatency = 10;
        e.hierarchy.levels.push_back(l2);
        e.hierarchy.memChannelInterval = interval;
        auto r = lab.run(wl, e);

        const core::HierarchySnapshot &h = r.run.hier;
        const core::LevelStats &l2s = h.levels.front();
        char label[16];
        std::snprintf(label, sizeof label, "1/%u cyc", interval);
        std::printf(
            "%-10s %8.3f %9.1f%% %12llu %12llu %11llu\n",
            interval == 0 ? "infinite" : label, r.mcpi(),
            l2s.requests == 0
                ? 0.0
                : 100.0 * double(l2s.hits) / double(l2s.requests),
            (unsigned long long)h.memChannel.sends,
            (unsigned long long)h.memChannel.delayedSends,
            (unsigned long long)h.memChannel.queueCycles);
    }

    std::printf("\nreading: the L1 never changes, yet its MCPI rises "
                "as the channel narrows -- saturation arrives from "
                "below. The delayed/queue columns show where the "
                "fetch stream serializes; once queue cycles dominate, "
                "extra L1 MSHRs cannot help and a wider channel (or a "
                "bigger L2) is the better spend.\n");
    return 0;
}
