/**
 * @file
 * Example: define your own workload with the kernel-builder API and
 * evaluate it across MSHR organizations.
 *
 * The workload below is a sparse matrix-vector product y = A*x in CSR
 * form -- a classic mixed pattern: streaming over the values/column
 * arrays, gather loads from x, and a serial row loop. It shows how to
 *
 *   1. lay out data with AddressSpace and initialize simulated memory,
 *   2. express the inner loop over virtual registers,
 *   3. compile at several scheduled load latencies, and
 *   4. run the machine and read the timing results.
 */

#include <cstdio>
#include <vector>

#include "compiler/compile.hh"
#include "compiler/kernel.hh"
#include "exec/machine.hh"
#include "util/rng.hh"
#include "workloads/workload.hh"

using namespace nbl;
using compiler::KernelBuilder;
using compiler::VReg;

namespace
{

constexpr uint64_t kRows = 256;
constexpr uint64_t kNnzPerRow = 8;
constexpr uint64_t kCols = 4096;

workloads::Workload
makeSpmv()
{
    workloads::Workload w;
    w.name = "spmv";
    w.program.name = "spmv";

    workloads::AddressSpace as;
    // CSR arrays: values + column indices, streamed; x gathered.
    auto vals = as.alloc(kRows * kNnzPerRow * 8);
    auto cols = as.alloc(kRows * kNnzPerRow * 8);
    auto x = as.alloc(kCols * 8);
    auto y = as.alloc(kRows * 8);

    KernelBuilder b("spmv.row", w.program.nextVRegId);
    b.countedLoop(0, int64_t(kRows * kNnzPerRow / 4));
    VReg vp = b.constI(int64_t(vals.base));
    VReg cp = b.constI(int64_t(cols.base));
    VReg xb = b.constI(int64_t(x.base));
    VReg yp = b.constI(int64_t(y.base));

    // Four nonzeros per iteration: stream val/col, gather from x.
    VReg acc{};
    for (int j = 0; j < 4; ++j) {
        VReg a = b.fload(vp, j * 8, vals.space);
        VReg ci = b.load(cp, j * 8, cols.space);
        VReg xa = b.add(xb, b.shli(ci, 3));
        VReg xv = b.fload(xa, 0, x.space);
        VReg prod = b.fmul(a, xv);
        acc = acc.valid() ? b.fadd(acc, prod) : prod;
    }
    b.fstore(yp, 0, acc, y.space);
    b.bump(vp, 32);
    b.bump(cp, 32);
    b.bump(yp, 8);
    w.program.kernels.push_back(b.take());
    w.program.outerReps = 4;

    w.init = [=](mem::SparseMemory &m) {
        Rng rng(0x5437);
        for (uint64_t i = 0; i < kRows * kNnzPerRow; ++i) {
            m.writeF64(vals.base + i * 8, 1.0 + 1e-3 * double(i % 97));
            m.write(cols.base + i * 8, 8, rng.below(kCols));
        }
        for (uint64_t c = 0; c < kCols; ++c)
            m.writeF64(x.base + c * 8, 0.5 + 1e-4 * double(c % 31));
    };
    return w;
}

} // namespace

int
main()
{
    workloads::Workload w = makeSpmv();
    std::printf("custom workload: CSR sparse matrix-vector product\n");
    std::printf("%-4s %-12s %8s %8s %8s\n", "lat", "config", "MCPI",
                "dep", "struct");

    for (int lat : {1, 10}) {
        compiler::CompileParams cp;
        cp.loadLatency = lat;
        isa::Program prog = compiler::compile(w.program, cp);
        for (auto cfg : {core::ConfigName::Mc0, core::ConfigName::Mc1,
                         core::ConfigName::Fc2,
                         core::ConfigName::NoRestrict}) {
            mem::SparseMemory m = w.makeMemory();
            exec::MachineConfig mc;
            mc.policy = core::makePolicy(cfg);
            auto out = exec::run(prog, m, mc);
            std::printf("%-4d %-12s %8.3f %8.3f %8.3f\n", lat,
                        core::configLabel(cfg), out.mcpi(),
                        double(out.cpu.depStallCycles) /
                            double(out.cpu.instructions),
                        double(out.cpu.structStallCycles) /
                            double(out.cpu.instructions));
        }
    }
    std::printf("\nthe gather from x makes spmv miss-heavy; watch the "
                "mc=1 -> fc=2 gap grow with the scheduled latency.\n");
    return 0;
}
